"""Tests for geometry primitives and the synthetic zone atlas."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, GeocodeError
from repro.geo.geometry import BBox, Point, Polygon, haversine_km
from repro.geo.zones import CONTINENTS, US_STATES, build_world

LONS = st.floats(min_value=-179.0, max_value=179.0)
LATS = st.floats(min_value=-59.0, max_value=74.0)


class TestPoint:
    def test_valid_point(self):
        p = Point(lon=10.0, lat=20.0)
        assert (p.lon, p.lat) == (10.0, 20.0)

    @pytest.mark.parametrize("lon,lat", [(181, 0), (-181, 0), (0, 91), (0, -91)])
    def test_out_of_range_rejected(self, lon, lat):
        with pytest.raises(ConfigError):
            Point(lon=lon, lat=lat)


class TestBBox:
    def test_degenerate_rejected(self):
        with pytest.raises(ConfigError):
            BBox(min_lon=1, min_lat=0, max_lon=0, max_lat=1)

    def test_center(self):
        box = BBox(min_lon=0, min_lat=0, max_lon=10, max_lat=20)
        assert box.center == Point(lon=5.0, lat=10.0)

    def test_contains_point_inclusive_edges(self):
        box = BBox(min_lon=0, min_lat=0, max_lon=1, max_lat=1)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(1, 1))
        assert not box.contains_point(Point(1.01, 1))

    def test_intersects_and_intersection(self):
        a = BBox(0, 0, 10, 10)
        b = BBox(5, 5, 15, 15)
        c = BBox(11, 11, 12, 12)
        assert a.intersects(b)
        assert not a.intersects(c)
        overlap = a.intersection(b)
        assert overlap == BBox(5, 5, 10, 10)
        assert a.intersection(c) is None

    def test_union(self):
        assert BBox(0, 0, 1, 1).union(BBox(5, 5, 6, 6)) == BBox(0, 0, 6, 6)

    def test_contains_bbox(self):
        assert BBox(0, 0, 10, 10).contains_bbox(BBox(1, 1, 2, 2))
        assert not BBox(0, 0, 10, 10).contains_bbox(BBox(1, 1, 12, 2))

    def test_of_points(self):
        box = BBox.of_points([Point(1, 2), Point(-1, 5), Point(0, 0)])
        assert box == BBox(min_lon=-1, min_lat=0, max_lon=1, max_lat=5)

    def test_of_points_empty_rejected(self):
        with pytest.raises(ConfigError):
            BBox.of_points([])

    def test_around_clamps_to_world(self):
        box = BBox.around(Point(lon=179.5, lat=89.5), half_size_deg=2.0)
        assert box.max_lon == 180.0
        assert box.max_lat == 90.0

    @given(LONS, LATS)
    def test_center_is_inside(self, lon, lat):
        box = BBox.around(Point(lon, lat), half_size_deg=1.0)
        assert box.contains_point(box.center)


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ConfigError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_from_bbox_matches_bbox_membership(self):
        box = BBox(0, 0, 10, 5)
        poly = Polygon.from_bbox(box)
        for p in (Point(5, 2), Point(0, 0), Point(10, 5)):
            assert poly.contains_point(p)
        assert not poly.contains_point(Point(11, 2))

    def test_triangle_containment(self):
        triangle = Polygon([Point(0, 0), Point(10, 0), Point(5, 10)])
        assert triangle.contains_point(Point(5, 3))
        assert not triangle.contains_point(Point(0.5, 8))

    def test_point_on_edge_is_inside(self):
        triangle = Polygon([Point(0, 0), Point(10, 0), Point(5, 10)])
        assert triangle.contains_point(Point(5, 0))

    def test_area(self):
        box = Polygon.from_bbox(BBox(0, 0, 4, 3))
        assert box.area_deg2 == pytest.approx(12.0)

    @given(LONS, LATS, st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=40)
    def test_bbox_polygon_equivalence(self, lon, lat, half):
        box = BBox.around(Point(lon, lat), half_size_deg=half)
        poly = Polygon.from_bbox(box)
        probe = box.center
        assert poly.contains_point(probe) == box.contains_point(probe)


class TestHaversine:
    def test_zero_distance(self):
        p = Point(10, 20)
        assert haversine_km(p, p) == 0.0

    def test_equator_degree(self):
        d = haversine_km(Point(0, 0), Point(1, 0))
        assert d == pytest.approx(111.19, rel=0.01)

    def test_symmetry(self):
        a, b = Point(10, 20), Point(30, -40)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestZoneAtlas:
    def test_zone_inventory(self, atlas):
        assert len(atlas.countries) == 250
        assert len(atlas.continents) == 6
        assert len(atlas.states) == 50
        assert len(atlas) == 306

    def test_zone_names_are_unique_and_stable(self, atlas):
        names = atlas.zone_names()
        assert len(names) == len(set(names))
        assert names == build_world().zone_names()

    def test_paper_countries_exist(self, atlas):
        for name in (
            "united_states", "india", "germany", "brazil", "mexico",
            "france", "vietnam", "singapore", "qatar",
        ):
            assert name in atlas

    def test_unknown_zone_raises(self, atlas):
        with pytest.raises(GeocodeError):
            atlas.zone("atlantis")

    def test_countries_of_continent(self, atlas):
        europe = atlas.countries_of("europe")
        assert len(europe) == 50
        assert any(c.name == "germany" for c in europe)

    def test_countries_of_non_continent_raises(self, atlas):
        with pytest.raises(GeocodeError):
            atlas.countries_of("germany")

    def test_country_at_matches_bbox(self, atlas):
        for zone in atlas.countries[::25]:
            assert atlas.country_at(zone.bbox.center).name == zone.name

    def test_country_at_outside_world_raises(self, atlas):
        with pytest.raises(GeocodeError):
            atlas.country_at(Point(lon=0.0, lat=85.0))

    def test_zones_for_point_includes_continent(self, atlas):
        center = atlas.zone("germany").bbox.center
        names = [z.name for z in atlas.zones_for_point(center)]
        assert names[0] == "germany"
        assert "europe" in names

    def test_us_point_includes_state(self, atlas):
        minnesota = atlas.zone("minnesota")
        names = [z.name for z in atlas.zones_for_point(minnesota.bbox.center)]
        assert set(names) == {"united_states", "north_america", "minnesota"}

    def test_states_tile_usa(self, atlas):
        usa = atlas.zone("united_states")
        assert len(US_STATES) == 50
        total_area = sum(s.bbox.area_deg2 for s in atlas.states)
        assert total_area == pytest.approx(usa.bbox.area_deg2)

    def test_resolve_bbox_uses_center(self, atlas):
        qatar = atlas.zone("qatar")
        center, zones = atlas.resolve_bbox(qatar.bbox)
        assert center == qatar.bbox.center
        assert zones[0].name == "qatar"

    def test_activity_ranking_head(self, atlas):
        """The paper's Fig. 3 ordering is encoded in the weights."""
        weights = [
            atlas.zone(n).activity_weight
            for n in ("united_states", "india", "germany", "brazil", "mexico")
        ]
        assert weights == sorted(weights, reverse=True)

    def test_continent_column_ranges_cover_grid(self):
        columns = sorted(r for ranges in CONTINENTS.values() for r in range(*ranges))
        assert columns == list(range(25))

    @given(LONS, LATS)
    @settings(max_examples=60)
    def test_every_world_point_has_exactly_one_country(self, lon, lat):
        atlas = build_world()
        point = Point(lon=lon, lat=lat)
        country = atlas.country_at(point)
        assert country.contains_point(point)
        # Only that country's bbox (among sampled neighbors) contains it
        # strictly in its interior; shared borders resolve to one owner.
        owners = [
            z for z in atlas.countries if z.contains_point(point)
        ]
        assert country.name in {z.name for z in owners}
        assert len(owners) <= 4  # at most a corner-point overlap
