"""Property tests: the planner's recursion is exactly optimal.

The level optimizer claims minimal (disk reads, cube count) over all
covers by aligned temporal units.  These tests verify that claim
against an independent brute-force dynamic program over day positions
— the straightforward-but-slow formulation — on randomized small
ranges, cache states, and index hole patterns.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import (
    Level,
    day_key,
    month_key,
    week_key_for,
    year_key,
)
from repro.core.hierarchy import HierarchicalIndex
from repro.core.optimizer import LevelOptimizer
from repro.collection.records import UpdateList, UpdateRecord
from repro.storage.disk import InMemoryDisk

_WEEK_STARTS = (1, 8, 15, 22)


def _dp_reference_cost(index, start, end, cached):
    """Brute-force DP over day positions: optimal (disk, cubes)."""
    total_days = (end - start).days + 1
    infinity = (1 << 30, 1 << 30)
    best = [infinity] * (total_days + 1)
    best[0] = (0, 0)
    for position in range(total_days):
        if best[position] == infinity:
            continue
        day = start + timedelta(days=position)
        candidates = [day_key(day)]
        if day.day in _WEEK_STARTS:
            week = week_key_for(day)
            if week is not None and week.end <= end:
                candidates.append(week)
        if day.day == 1 and month_key(day.year, day.month).end <= end:
            candidates.append(month_key(day.year, day.month))
        if day.day == 1 and day.month == 1 and year_key(day.year).end <= end:
            candidates.append(year_key(day.year))
        advanced = False
        for unit in candidates:
            if not index.has(unit):
                continue
            advanced = True
            landing = position + unit.day_count
            cost = (
                best[position][0] + (0 if unit in cached else 1),
                best[position][1] + 1,
            )
            if cost < best[landing]:
                best[landing] = cost
        if not advanced:
            # Missing day: skip at zero cost.
            if best[position] < best[position + 1]:
                best[position + 1] = best[position]
    return best[total_days]


def _updates(day):
    return UpdateList(
        [
            UpdateRecord(
                element_type="way",
                date=day,
                country="germany",
                latitude=50.0,
                longitude=10.0,
                road_type="residential",
                update_type="geometry",
                changeset_id=1,
            )
        ]
    )


@pytest.fixture(scope="module")
def dense_index(tiny_schema):
    """Six fully ingested months (2021-01-01 .. 2021-06-30)."""
    disk = InMemoryDisk(read_latency=0, write_latency=0)
    index = HierarchicalIndex(tiny_schema, disk)
    day = date(2021, 1, 1)
    while day <= date(2021, 6, 30):
        index.ingest_day(day, _updates(day))
        day += timedelta(days=1)
    return index


RANGE_DAYS = st.integers(min_value=0, max_value=180)


class TestOptimalityDense:
    @given(offset=st.integers(0, 150), span=st.integers(0, 60), data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_dp_with_random_cache(self, dense_index, offset, span, data):
        start = date(2021, 1, 1) + timedelta(days=offset)
        end = min(start + timedelta(days=span), date(2021, 6, 30))
        # Random cache: sample keys of all levels within the index.
        pool = (
            dense_index.keys(Level.DAY)
            + dense_index.keys(Level.WEEK)
            + dense_index.keys(Level.MONTH)
        )
        cached = frozenset(
            data.draw(
                st.lists(st.sampled_from(pool), max_size=20, unique=True)
            )
        )
        plan = LevelOptimizer(dense_index).plan(start, end, cached)
        reference = _dp_reference_cost(dense_index, start, end, cached)
        assert (plan.disk_reads, plan.cube_count) == reference

    @given(offset=st.integers(0, 150), span=st.integers(0, 60))
    @settings(max_examples=30, deadline=None)
    def test_plan_covers_exactly_once(self, dense_index, offset, span):
        start = date(2021, 1, 1) + timedelta(days=offset)
        end = min(start + timedelta(days=span), date(2021, 6, 30))
        plan = LevelOptimizer(dense_index).plan(start, end)
        covered = []
        for key in plan.keys:
            day = key.start
            while day <= key.end:
                covered.append(day)
                day += timedelta(days=1)
        expected = []
        day = start
        while day <= end:
            expected.append(day)
            day += timedelta(days=1)
        assert covered == expected
        assert plan.missing_days == []


class TestOptimalityWithHoles:
    @pytest.fixture(scope="class")
    def holey_index(self, tiny_schema):
        """Ingest Jan-Mar 2021 but skip every 5th day (no rollups for
        incomplete units beyond what ingest_day builds)."""
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(tiny_schema, disk)
        day = date(2021, 1, 1)
        position = 0
        while day <= date(2021, 3, 31):
            if position % 5 != 4:
                index.ingest_day(day, _updates(day))
            day += timedelta(days=1)
            position += 1
        return index

    @given(offset=st.integers(0, 80), span=st.integers(0, 40), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_dp_despite_missing_days(self, holey_index, offset, span, data):
        start = date(2021, 1, 1) + timedelta(days=offset)
        end = min(start + timedelta(days=span), date(2021, 3, 31))
        pool = holey_index.keys(Level.DAY) + holey_index.keys(Level.WEEK)
        cached = frozenset(
            data.draw(st.lists(st.sampled_from(pool), max_size=10, unique=True))
        )
        plan = LevelOptimizer(holey_index).plan(start, end, cached)
        reference = _dp_reference_cost(holey_index, start, end, cached)
        assert (plan.disk_reads, plan.cube_count) == reference

    @given(offset=st.integers(0, 80), span=st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_missing_days_are_exactly_the_holes(self, holey_index, offset, span):
        start = date(2021, 1, 1) + timedelta(days=offset)
        end = min(start + timedelta(days=span), date(2021, 3, 31))
        plan = LevelOptimizer(holey_index).plan(start, end)
        covered_days = set()
        for key in plan.keys:
            day = key.start
            while day <= key.end:
                covered_days.add(day)
                day += timedelta(days=1)
        all_days = {
            start + timedelta(days=i) for i in range((end - start).days + 1)
        }
        # Covered days + missing days partition the range exactly.
        assert covered_days | set(plan.missing_days) == all_days
        assert covered_days & set(plan.missing_days) == set()
        # A day can only be missing if it has no daily cube (a hole
        # may still be *covered* by an existing weekly/monthly rollup).
        for day in plan.missing_days:
            assert not holey_index.has(day_key(day))


class TestSeededSweep:
    """500 seeded (range, cache-state) cells against the DP oracle.

    The hypothesis suites above shrink well but explore ~150 examples;
    this sweep is the exhaustive complement — ten cells per seed, every
    cell replayable by its printed seed number, half of them over an
    index with Bernoulli holes.  Each cell checks both claims at once:
    cost-optimality against :func:`_dp_reference_cost` and an
    exactly-once day-level cover (no gap, no overlap, missing days
    partition the remainder).
    """

    pytestmark = pytest.mark.slow

    _LAST_DAY = date(2021, 6, 30)

    @pytest.fixture(scope="class")
    def sparse_index(self, tiny_schema):
        """Jan-Jun 2021 with each day present with probability 0.8."""
        rng = random.Random(99)
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(tiny_schema, disk)
        day = date(2021, 1, 1)
        while day <= self._LAST_DAY:
            if rng.random() < 0.8:
                index.ingest_day(day, _updates(day))
            day += timedelta(days=1)
        return index

    def _check_cell(self, index, rng):
        offset = rng.randrange(0, 170)
        span = rng.randrange(0, 75)
        start = date(2021, 1, 1) + timedelta(days=offset)
        end = min(start + timedelta(days=span), self._LAST_DAY)
        pool = (
            index.keys(Level.DAY)
            + index.keys(Level.WEEK)
            + index.keys(Level.MONTH)
        )
        cached = frozenset(rng.sample(pool, rng.randrange(0, 25)))

        plan = LevelOptimizer(index).plan(start, end, cached)

        assert (plan.disk_reads, plan.cube_count) == _dp_reference_cost(
            index, start, end, cached
        )
        covered = []
        for key in plan.keys:
            day = key.start
            while day <= key.end:
                covered.append(day)
                day += timedelta(days=1)
        assert covered == sorted(covered), "plan keys out of order"
        assert len(covered) == len(set(covered)), "a day covered twice"
        all_days = {
            start + timedelta(days=i) for i in range((end - start).days + 1)
        }
        assert set(covered) | set(plan.missing_days) == all_days
        assert set(covered) & set(plan.missing_days) == set()

    @pytest.mark.parametrize("seed", range(25))
    def test_dense_cells(self, dense_index, seed):
        rng = random.Random(seed)
        for _ in range(10):
            self._check_cell(dense_index, rng)

    @pytest.mark.parametrize("seed", range(25))
    def test_sparse_cells(self, sparse_index, seed):
        rng = random.Random(1000 + seed)
        for _ in range(10):
            self._check_cell(sparse_index, rng)
