"""Tests for the project lint suite (``repro.tools.lint``).

Rule behaviour is pinned against the deliberately broken package tree
in ``tests/lint_fixtures/fixturepkg`` (one must-flag and one must-pass
site per rule), and the real ``src/repro`` tree is asserted clean
against the committed (empty) baseline.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.tools.lint import LintConfig, LintReport, RULES, run_lint
from repro.tools.lint.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.tools.lint.cli import main as lint_main
from repro.tools.lint.layering import module_imports
from repro.tools.lint.model import DEFAULT_LAYERS, load_source_file
from repro.tools.lint.runner import default_package_root

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_ROOT = Path(__file__).resolve().parent / "lint_fixtures" / "fixturepkg"
FIXTURE_CONFIG = LintConfig(top_package="fixturepkg")


@pytest.fixture(scope="module")
def fixture_report() -> LintReport:
    return run_lint(package_root=FIXTURE_ROOT, config=FIXTURE_CONFIG)


def _findings(report: LintReport, rule: str):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------- fixtures


def test_fixture_tree_rule_counts(fixture_report: LintReport) -> None:
    counts = Counter(f.rule for f in fixture_report.findings)
    assert counts == {
        "layering": 2,
        "layering-cycle": 1,
        "layering-undeclared": 2,
        "lock-guard": 3,
        "hot-path-clock": 2,
        "except-pass": 1,
        "broad-except": 1,
        "mutable-default": 1,
        "cube-order": 3,
        "metric-name": 6,
        "todo": 1,
    }
    assert fixture_report.suppressed == 1
    assert not fixture_report.ok


def test_layering_flags_upward_and_sideways(fixture_report: LintReport) -> None:
    by_path = {f.path: f.message for f in _findings(fixture_report, "layering")}
    assert "upward edge" in by_path["errors/__init__.py"]
    assert "sideways edge" in by_path["osm/__init__.py"]


def test_layering_reports_the_cycle_once(fixture_report: LintReport) -> None:
    (cycle,) = _findings(fixture_report, "layering-cycle")
    assert "core -> errors -> core" in cycle.message


def test_layering_flags_undeclared_packages(fixture_report: LintReport) -> None:
    paths = {f.path for f in _findings(fixture_report, "layering-undeclared")}
    # Once for the undeclared package itself, once at the import site.
    assert paths == {
        "notalayer/__init__.py",
        "dashboard/imports_undeclared.py",
    }


def test_type_checking_imports_are_exempt(fixture_report: LintReport) -> None:
    assert not any(
        f.path == "collection/pipeline.py" for f in fixture_report.findings
    )
    source = load_source_file(
        FIXTURE_ROOT / "collection" / "pipeline.py", FIXTURE_ROOT, "fixturepkg"
    )
    edges = {e.target: e for e in module_imports(source)}
    assert edges["fixturepkg.core.clock"].type_only


def test_lock_guard_flags_only_unguarded_mutations(
    fixture_report: LintReport,
) -> None:
    found = _findings(fixture_report, "lock-guard")
    assert {f.path for f in found} == {"core/locks.py", "core/singleflight.py"}
    contexts = {f.context for f in found}
    assert contexts == {
        "self._items[key] = value  # unguarded subscript store",
        "self._items.pop(key, None)  # unguarded mutator call",
        "self._inflight.pop(key, None)  # unguarded inflight pop",
    }
    assert all("guarded by self._lock" in f.message for f in found)


def test_hot_path_clock_only_in_hot_packages(fixture_report: LintReport) -> None:
    found = _findings(fixture_report, "hot-path-clock")
    assert {f.path for f in found} == {"core/clock.py"}
    assert {f.message.split("(")[0].split()[-1] for f in found} == {
        "time.time",
        "datetime.datetime.now",
    }


def test_broad_except_split_and_suppression(fixture_report: LintReport) -> None:
    (swallowed,) = _findings(fixture_report, "except-pass")
    (dropped,) = _findings(fixture_report, "broad-except")
    assert swallowed.path == dropped.path == "geo/hygiene.py"
    # The `justified()` handler carries `# lint: allow[broad-except]`.
    assert fixture_report.suppressed == 1
    assert "allow[broad-except]" not in dropped.context


def test_mutable_default(fixture_report: LintReport) -> None:
    (finding,) = _findings(fixture_report, "mutable-default")
    assert "bad_default" in finding.message


def test_cube_order_strict_vs_presentation(fixture_report: LintReport) -> None:
    found = _findings(fixture_report, "cube-order")
    by_path = {f.path: f for f in found}
    # Strict package: even a 2-axis subset must be ordered.
    assert "('country', 'element_type')" in by_path["storage/pages.py"].message
    # The sparse decode path is storage too: a permuted full tuple is
    # flagged while the ordered full/partial tuples next to it are not.
    assert "SPARSE_DECODE_BAD" in by_path["storage/sparse_kernel.py"].context
    assert not any(
        "SPARSE_DECODE_GOOD" in f.context or "SPARSE_PARTIAL_GOOD" in f.context
        for f in found
    )
    # Presentation package: partial tuples are a user choice, full order is not.
    assert "FULL_BAD" in by_path["dashboard/charts.py"].context


def test_metric_name_hygiene(fixture_report: LintReport) -> None:
    found = _findings(fixture_report, "metric-name")
    assert {f.path for f in found} == {
        "collection/metrics.py",
        "dashboard/admission.py",
        "dashboard/slo_metrics.py",
    }
    messages = " ".join(f.message for f in found)
    assert ".inc()" in messages  # literal passed to a registry writer
    assert "inside a function" in messages  # metric_key() not at module scope
    # The module-level metric_key() constants are NOT among the findings.
    assert not any("_K_OK" in f.context for f in found)
    assert not any("_M_SHED_OK" in f.context for f in found)
    assert not any("_M_SLO_OK" in f.context for f in found)
    assert not any("_M_TRACE_KEPT" in f.context for f in found)
    # The admission metric family is covered like any other: a literal
    # rased_admission_* name in a registry writer is flagged.
    admission = [f for f in found if f.path == "dashboard/admission.py"]
    assert any("rased_admission_requests_total" in f.context for f in admission)
    assert any(
        "rased_admission_deadline_hits_total" in f.context for f in admission
    )
    # Same discipline for the SLO / flight-recorder families.
    slo = [f for f in found if f.path == "dashboard/slo_metrics.py"]
    assert any("rased_slo_requests_total" in f.context for f in slo)
    assert any("rased_trace_dropped_total" in f.context for f in slo)


def test_todo_tracking(fixture_report: LintReport) -> None:
    (finding,) = _findings(fixture_report, "todo")
    assert finding.path == "geo/hygiene.py"
    assert "TODO" in finding.message


def test_rule_subset_selection() -> None:
    report = run_lint(
        package_root=FIXTURE_ROOT, config=FIXTURE_CONFIG, rules=["lock-guard"]
    )
    assert {f.rule for f in report.findings} == {"lock-guard"}


# ---------------------------------------------------------------- baseline


def test_baseline_roundtrip(tmp_path: Path, fixture_report: LintReport) -> None:
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, fixture_report.findings)
    report = run_lint(
        package_root=FIXTURE_ROOT, config=FIXTURE_CONFIG, baseline_path=baseline
    )
    assert report.ok
    assert report.baselined == len(fixture_report.findings)
    assert report.suppressed == fixture_report.suppressed


def test_baseline_fingerprints_ignore_line_numbers(
    fixture_report: LintReport,
) -> None:
    for finding in fixture_report.findings:
        assert str(finding.line) not in finding.fingerprint.split("::")[1:2]
        assert finding.fingerprint.count("::") == 2


def test_baseline_count_budget(tmp_path: Path, fixture_report: LintReport) -> None:
    # Baseline only ONE of the two lock-guard findings: the other stays fresh.
    lock_findings = _findings(fixture_report, "lock-guard")
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, lock_findings[:1])
    fresh, baselined = apply_baseline(lock_findings, load_baseline(baseline))
    assert baselined == 1
    assert [f.context for f in fresh] == [f.context for f in lock_findings[1:]]


def test_baseline_rejects_unknown_version(tmp_path: Path) -> None:
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(bad)


def test_missing_baseline_is_empty(tmp_path: Path) -> None:
    assert load_baseline(tmp_path / "nope.json") == Counter()


# ---------------------------------------------------------------- real tree


def test_real_tree_is_clean_without_baseline() -> None:
    report = run_lint(package_root=default_package_root())
    assert report.findings == []
    assert report.files_scanned > 50


def test_committed_baseline_is_empty() -> None:
    payload = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert payload == {"version": BASELINE_VERSION, "findings": []}


def test_every_source_package_is_declared() -> None:
    declared = {name for level in DEFAULT_LAYERS for name in level}
    packages = {
        child.name
        for child in default_package_root().iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages <= declared


# ---------------------------------------------------------------- CLI


def test_cli_json_on_fixture_tree(capsys: pytest.CaptureFixture) -> None:
    # Via --root the default top package ("repro") doesn't match fixture
    # imports, so layering is quiet — but the hygiene rules still fire.
    rc = lint_main(
        ["--root", str(FIXTURE_ROOT), "--no-baseline", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["ok"] is False
    rules = {f["rule"] for f in payload["findings"]}
    assert "lock-guard" in rules and "except-pass" in rules


def test_cli_real_tree_passes(capsys: pytest.CaptureFixture) -> None:
    rc = lint_main(["--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["ok"] is True and payload["findings"] == []


def test_cli_rejects_unknown_rule(capsys: pytest.CaptureFixture) -> None:
    rc = lint_main(["--rules", "no-such-rule"])
    assert rc == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_cli_write_baseline(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    target = tmp_path / "generated.json"
    rc = lint_main(
        ["--root", str(FIXTURE_ROOT), "--baseline", str(target), "--write-baseline"]
    )
    assert rc == 0
    payload = json.loads(target.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert payload["findings"]  # fixture hygiene findings got recorded
    capsys.readouterr()


def test_rased_repro_cli_has_lint_subcommand() -> None:
    from repro.cli import build_parser

    args = build_parser().parse_args(["lint", "--format", "json"])
    assert args.format == "json" and callable(args.func)


def test_rules_registry_names() -> None:
    assert set(RULES) == {
        "layering",
        "lock-guard",
        "hot-path-clock",
        "broad-except",
        "mutable-default",
        "cube-order",
        "metric-name",
        "todo",
    }
