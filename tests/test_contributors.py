"""Tests for contributor analytics over changeset metadata."""

from __future__ import annotations

from datetime import date, datetime, timedelta, timezone

import pytest

from repro.core.contributors import (
    BULK_SESSION_THRESHOLD,
    Contributor,
    ContributorStats,
)
from repro.geo.geometry import BBox
from repro.osm.changesets import Changeset, ChangesetStore


def make_changeset(
    cid: int,
    uid: int = 5,
    user: str = "alice",
    changes: int = 10,
    day: int = 1,
    created_by: str = "iD",
) -> Changeset:
    start = datetime(2021, 3, day, 10, tzinfo=timezone.utc)
    return Changeset(
        id=cid,
        created_at=start,
        closed_at=start + timedelta(minutes=30),
        uid=uid,
        user=user,
        bbox=BBox(-1, -1, 1, 1),
        tags={"created_by": created_by},
        changes_count=changes,
    )


class TestContributor:
    def test_absorb_accumulates(self):
        contributor = Contributor(uid=5, user="alice")
        contributor.absorb(make_changeset(1, changes=10))
        contributor.absorb(make_changeset(2, changes=20, day=3))
        assert contributor.session_count == 2
        assert contributor.change_count == 30
        assert contributor.changes_per_session == 15
        assert contributor.active_days == 3

    def test_bulk_threshold(self):
        contributor = Contributor(uid=5, user="alice")
        contributor.absorb(make_changeset(1, changes=BULK_SESSION_THRESHOLD))
        contributor.absorb(make_changeset(2, changes=5))
        assert contributor.bulk_session_count == 1
        assert contributor.bulk_change_count == BULK_SESSION_THRESHOLD

    def test_editors_collected(self):
        contributor = Contributor(uid=5, user="alice")
        contributor.absorb(make_changeset(1, created_by="iD"))
        contributor.absorb(make_changeset(2, created_by="JOSM"))
        assert contributor.editors == {"iD", "JOSM"}

    def test_empty_contributor(self):
        contributor = Contributor(uid=1, user="ghost")
        assert contributor.changes_per_session == 0.0
        assert contributor.active_days == 0


class TestContributorStats:
    @pytest.fixture()
    def stats(self):
        stats = ContributorStats()
        for cid in range(1, 4):
            stats.absorb(make_changeset(cid, uid=5, user="alice", changes=10))
        stats.absorb(make_changeset(10, uid=9, user="corp_bot", changes=500))
        stats.absorb(make_changeset(11, uid=9, user="corp_bot", changes=300))
        return stats

    def test_counts(self, stats):
        assert len(stats) == 2
        assert stats.total_sessions == 5
        assert stats.total_changes == 830

    def test_top_by_changes(self, stats):
        top = stats.top(1)
        assert top[0].user == "corp_bot"

    def test_top_by_sessions(self, stats):
        top = stats.top(1, by="session_count")
        assert top[0].user == "alice"

    def test_bulk_change_share(self, stats):
        assert stats.bulk_change_share == pytest.approx(800 / 830)

    def test_contributor_lookup(self, stats):
        assert stats.contributor(5).user == "alice"
        assert stats.contributor(404) is None

    def test_render_table(self, stats):
        text = stats.render_table(5)
        assert "corp_bot" in text
        assert "changes" in text.splitlines()[0]

    def test_empty_stats(self):
        stats = ContributorStats()
        assert stats.bulk_change_share == 0.0
        assert stats.top() == []
        assert "user" in stats.render_table()

    def test_from_store_with_date_filter(self, tmp_path):
        store = ChangesetStore(tmp_path)
        store.add(make_changeset(1, day=1))
        store.add(make_changeset(2, day=10))
        store.flush()
        all_stats = ContributorStats.from_store(store)
        assert all_stats.total_sessions == 2
        windowed = ContributorStats.from_store(
            store, start=date(2021, 3, 5), end=date(2021, 3, 31)
        )
        assert windowed.total_sessions == 1

    def test_from_simulated_store(self, ingested_system):
        """The simulator's mapper profiles show up in the analytics."""
        stats = ContributorStats.from_store(ingested_system.changeset_store)
        assert len(stats) > 5
        assert stats.total_sessions > 50
        top = stats.top(5)
        # Bulk editors (corporate/importer profiles) should lead.
        assert top[0].change_count >= top[-1].change_count
        editors = {e for c in stats.top(50) for e in c.editors}
        assert "rased-repro-simulator" in editors
