"""Tests for the Data Collection module: records, geocoding, crawlers.

The key integration checks validate both crawlers against the
simulator's ground truth: the daily crawler must recover every truth
row up to the documented coarsening of UpdateType, and the monthly
crawler must recover the exact 4-way classification.
"""

from __future__ import annotations

import io
from collections import Counter
from datetime import date, datetime, timezone

import pytest

from repro.core.calendar import month_key
from repro.core.dimensions import default_schema
from repro.errors import GeocodeError, ParseError
from repro.geo.geometry import BBox, Point
from repro.collection.daily import DailyCrawler, coarse_update_type
from repro.collection.geocode import Geocoder
from repro.collection.monthly import MonthlyCrawler
from repro.collection.records import UpdateList, UpdateRecord
from repro.osm.changesets import Changeset, ChangesetStore
from repro.osm.model import OSMNode
from repro.osm.replication import ReplicationFeed
from repro.synth.simulator import EditSimulator, SimulationConfig


def small_config(**overrides):
    defaults = dict(
        seed=9, mapper_count=20, base_sessions_per_day=5, nodes_per_country=8
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def make_record(**overrides) -> UpdateRecord:
    defaults = dict(
        element_type="way",
        date=date(2021, 3, 5),
        country="germany",
        latitude=50.0,
        longitude=10.0,
        road_type="residential",
        update_type="create",
        changeset_id=42,
    )
    defaults.update(overrides)
    return UpdateRecord(**defaults)


class TestUpdateRecord:
    def test_valid_record(self):
        record = make_record()
        assert record.point == Point(lon=10.0, lat=50.0)

    def test_bad_element_type_rejected(self):
        with pytest.raises(ParseError):
            make_record(element_type="building")

    def test_bad_update_type_rejected(self):
        with pytest.raises(ParseError):
            make_record(update_type="vandalism")

    def test_tsv_roundtrip(self):
        record = make_record()
        assert UpdateRecord.from_tsv(record.to_tsv()) == record

    def test_tsv_wrong_arity_rejected(self):
        with pytest.raises(ParseError):
            UpdateRecord.from_tsv("a\tb\tc")

    def test_tsv_bad_number_rejected(self):
        fields = make_record().to_tsv().split("\t")
        fields[3] = "not-a-float"
        with pytest.raises(ParseError):
            UpdateRecord.from_tsv("\t".join(fields))


class TestUpdateList:
    def test_file_roundtrip(self, tmp_path):
        updates = UpdateList([make_record(changeset_id=i) for i in range(5)])
        path = tmp_path / "updates.tsv"
        updates.write_tsv(path)
        restored = UpdateList.read_tsv(path)
        assert list(restored) == list(updates)

    def test_stream_roundtrip(self):
        updates = UpdateList([make_record()])
        buffer = io.StringIO()
        updates.write_tsv(buffer)
        buffer.seek(0)
        assert list(UpdateList.read_tsv(buffer)) == list(updates)

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            UpdateList.read_tsv(io.StringIO("wrong\theader\n"))

    def test_cube_coordinates_without_atlas(self, tiny_schema):
        updates = UpdateList([make_record(), make_record(country="qatar")])
        coords = updates.cube_coordinates(tiny_schema)
        assert coords.shape == (2, 4)

    def test_cube_coordinates_zone_expansion(self, atlas, small_schema):
        germany = atlas.zone("germany").bbox.center
        updates = UpdateList(
            [make_record(latitude=germany.lat, longitude=germany.lon)]
        )
        coords = updates.cube_coordinates(small_schema, atlas)
        zones = {small_schema.country.value(int(c[1])) for c in coords}
        assert zones == {"germany", "europe"}

    def test_cube_coordinates_us_state_expansion(self, atlas, small_schema):
        minnesota = atlas.zone("minnesota").bbox.center
        updates = UpdateList(
            [
                make_record(
                    country="united_states",
                    latitude=minnesota.lat,
                    longitude=minnesota.lon,
                )
            ]
        )
        coords = updates.cube_coordinates(small_schema, atlas)
        zones = {small_schema.country.value(int(c[1])) for c in coords}
        assert zones == {"united_states", "north_america", "minnesota"}

    def test_unknown_road_type_folds_into_last_slot(self, atlas, small_schema):
        germany = atlas.zone("germany").bbox.center
        updates = UpdateList(
            [
                make_record(
                    road_type="bus_guideway",  # outside the 8-type schema
                    latitude=germany.lat,
                    longitude=germany.lon,
                )
            ]
        )
        coords = updates.cube_coordinates(small_schema, atlas)
        assert len(coords) == 2  # still counted (germany + europe)
        assert all(int(c[2]) == len(small_schema.road_type) - 1 for c in coords)

    def test_empty_list_coordinates(self, tiny_schema):
        assert UpdateList().cube_coordinates(tiny_schema).shape == (0, 4)


class TestGeocoder:
    def test_locate_node(self, atlas):
        geocoder = Geocoder(atlas)
        center = atlas.zone("qatar").bbox.center
        node = OSMNode(
            id=1,
            version=1,
            timestamp=datetime(2021, 1, 1, tzinfo=timezone.utc),
            changeset=1,
            lat=center.lat,
            lon=center.lon,
        )
        location = geocoder.locate_node(node)
        assert location.country.name == "qatar"

    def test_locate_changeset_uses_bbox_center(self, atlas):
        geocoder = Geocoder(atlas)
        bbox = atlas.zone("brazil").bbox
        changeset = Changeset(
            id=1,
            created_at=datetime(2021, 1, 1, tzinfo=timezone.utc),
            closed_at=datetime(2021, 1, 1, tzinfo=timezone.utc),
            uid=1,
            user="x",
            bbox=bbox,
        )
        location = geocoder.locate_changeset(changeset)
        assert location.country.name == "brazil"
        assert location.point == bbox.center

    def test_changeset_without_bbox_raises(self, atlas):
        geocoder = Geocoder(atlas)
        changeset = Changeset(
            id=1,
            created_at=datetime(2021, 1, 1, tzinfo=timezone.utc),
            closed_at=datetime(2021, 1, 1, tzinfo=timezone.utc),
            uid=1,
            user="x",
            bbox=None,
        )
        with pytest.raises(GeocodeError):
            geocoder.locate_changeset(changeset)


class TestCoarseUpdateType:
    def test_mapping(self):
        assert coarse_update_type("create") == "create"
        assert coarse_update_type("delete") == "delete"
        assert coarse_update_type("modify") == "geometry"


@pytest.fixture(scope="module")
def crawl_setup(atlas, tmp_path_factory):
    """Five simulated days published to real feed files, then crawled."""
    root = tmp_path_factory.mktemp("feeds")
    sim = EditSimulator(atlas=atlas, config=small_config())
    feed = ReplicationFeed(root / "replication", "day")
    changesets = ChangesetStore(root / "changesets")
    truth_by_day = {}
    for output in sim.simulate_range(date(2021, 3, 1), date(2021, 3, 5)):
        for changeset in output.changesets:
            changesets.add(changeset)
        changesets.flush()
        stamp = datetime.combine(
            output.day, datetime.min.time(), tzinfo=timezone.utc
        )
        feed.publish(output.change, stamp)
        truth_by_day[output.day] = output.truth
    history_path = root / "history.osm"
    sim.write_history_dump(history_path)
    return sim, feed, changesets, truth_by_day, history_path


class TestDailyCrawler:
    def test_crawl_recovers_every_update(self, atlas, crawl_setup):
        _, feed, changesets, truth_by_day, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        results = list(crawler.crawl_new())
        assert len(results) == 5
        for result in results:
            truth = truth_by_day[result.day]
            assert len(result.updates) == len(truth)
            assert result.skipped == 0

    def test_crawled_attributes_match_truth_exactly_except_update_type(
        self, atlas, crawl_setup
    ):
        _, feed, changesets, truth_by_day, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        result = next(iter(crawler.crawl_new()))
        truth = truth_by_day[result.day]

        def strip(record):
            # Coordinates pass through 7-decimal XML formatting; compare
            # at 5 decimals (~1 m) to stay clear of the rounding edge.
            return (
                record.element_type,
                record.date,
                record.country,
                round(record.latitude, 5),
                round(record.longitude, 5),
                record.road_type,
                record.changeset_id,
            )

        assert Counter(map(strip, result.updates)) == Counter(map(strip, truth))

    def test_update_types_are_coarse(self, atlas, crawl_setup):
        _, feed, changesets, truth_by_day, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        result = next(iter(crawler.crawl_new()))
        types = {r.update_type for r in result.updates}
        assert types <= {"create", "delete", "geometry"}
        assert "metadata" not in types

    def test_coarse_counts_match_coarsened_truth(self, atlas, crawl_setup):
        _, feed, changesets, truth_by_day, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        for result in crawler.crawl_new():
            truth = truth_by_day[result.day]
            coarsened = Counter(
                "geometry" if r.update_type == "metadata" else r.update_type
                for r in truth
            )
            crawled = Counter(r.update_type for r in result.updates)
            assert crawled == coarsened

    def test_crawl_new_is_incremental(self, atlas, crawl_setup):
        _, feed, changesets, _, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        first = list(crawler.crawl_new())
        assert len(first) == 5
        assert list(crawler.crawl_new()) == []

    def test_crawl_specific_sequence(self, atlas, crawl_setup):
        _, feed, changesets, truth_by_day, _ = crawl_setup
        crawler = DailyCrawler(feed, changesets, Geocoder(atlas))
        result = crawler.crawl_sequence(2)
        assert result.sequence == 2
        assert result.day == date(2021, 3, 3)

    def test_missing_changeset_counts_skipped(self, atlas, tmp_path):
        """A way whose changeset is unknown is skipped, not mislocated."""
        from repro.osm.model import OSMWay
        from repro.osm.xml_io import OsmChange

        feed = ReplicationFeed(tmp_path / "repl", "day")
        way = OSMWay(
            id=1,
            version=1,
            timestamp=datetime(2021, 1, 1, tzinfo=timezone.utc),
            changeset=777,  # never registered
            refs=(1, 2),
            tags={"highway": "residential"},
        )
        feed.publish(
            OsmChange(create=[way]),
            datetime(2021, 1, 1, tzinfo=timezone.utc),
        )
        crawler = DailyCrawler(
            feed, ChangesetStore(tmp_path / "cs"), Geocoder(__import__("repro.geo.zones", fromlist=["build_world"]).build_world())
        )
        result = next(iter(crawler.crawl_new()))
        assert result.skipped == 1
        assert len(result.updates) == 0


class TestMonthlyCrawler:
    def test_monthly_matches_truth_exactly(self, atlas, crawl_setup):
        _, _, changesets, truth_by_day, history_path = crawl_setup
        crawler = MonthlyCrawler(changesets, Geocoder(atlas))
        result = crawler.crawl_month(history_path, month_key(2021, 3))
        truth_all = [r for rows in truth_by_day.values() for r in rows]

        def strip(record):
            return (
                record.element_type,
                record.date,
                record.country,
                record.road_type,
                record.update_type,
                record.changeset_id,
            )

        assert Counter(map(strip, result.updates)) == Counter(map(strip, truth_all))
        assert result.skipped == 0

    def test_monthly_filters_to_target_month(self, atlas, crawl_setup):
        _, _, changesets, _, history_path = crawl_setup
        crawler = MonthlyCrawler(changesets, Geocoder(atlas))
        result = crawler.crawl_month(history_path, month_key(2021, 2))
        assert len(result.updates) == 0
        assert result.scanned_versions > 0

    def test_monthly_has_all_four_update_types(self, atlas, crawl_setup):
        _, _, changesets, truth_by_day, history_path = crawl_setup
        crawler = MonthlyCrawler(changesets, Geocoder(atlas))
        result = crawler.crawl_month(history_path, month_key(2021, 3))
        types = {r.update_type for r in result.updates}
        assert "metadata" in types
        assert "create" in types

    def test_accepts_element_iterable(self, atlas, crawl_setup):
        sim, _, changesets, _, _ = crawl_setup
        crawler = MonthlyCrawler(changesets, Geocoder(atlas))
        from repro.osm.history import write_history
        import io as _io

        # Pass the in-memory sorted element stream directly.
        elements = sorted(
            sim.world.history,
            key=lambda e: ({"node": 0, "way": 1, "relation": 2}[e.kind], e.id, e.version),
        )
        result = crawler.crawl_month(elements, month_key(2021, 3))
        assert len(result.updates) > 0
