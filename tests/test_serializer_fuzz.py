"""Fuzzing the cube page serializer across all three page formats.

The serializer's contract is absolute in both directions:

* **round-trip** — any cube (either representation, either resolution,
  any sparsity from empty to fully dense, any value width up to int64)
  serialized at any page version deserializes to an equal cube;
* **corruption** — any truncation raises :class:`PageCorruptError`;
  any single-bit flip inside the region a format's CRC covers (the
  payload for v1/v2, whose header checksum predates this PR and stays
  payload-only for compat; the entire page for v3) either raises
  :class:`PageCorruptError` or decodes the original cube.  Never a
  wrong cube, never a different exception, never a crash.

Everything is driven by ``random.Random(seed)`` — a failure reproduces
from the seed printed in the assertion message.
"""

from __future__ import annotations

import random
from datetime import date

import numpy as np
import pytest

from repro.core.calendar import day_key, month_key, week_key, year_key
from repro.core.cube import (
    RESOLUTION_COARSE,
    RESOLUTION_FULL,
    SparseCube,
    as_dense,
)
from repro.core.dimensions import default_schema
from repro.errors import PageCorruptError
from repro.storage.serializer import (
    PAGE_VERSION_COMPRESSED,
    PAGE_VERSION_RAW,
    PAGE_VERSION_SPARSE,
    deserialize_cube,
    serialize_cube,
)

pytestmark = pytest.mark.fuzz

_SCHEMA = default_schema(["united_states", "germany", "qatar"], road_types=6)
_KEYS = (
    day_key(date(2021, 3, 5)),
    week_key(2021, 3, 2),
    month_key(2021, 3),
    year_key(2021),
)
_VERSIONS = (PAGE_VERSION_RAW, PAGE_VERSION_COMPRESSED, PAGE_VERSION_SPARSE)


def _random_cube(rng: random.Random):
    """A cube of random form, key, resolution, sparsity, and magnitude."""
    key = rng.choice(_KEYS)
    resolution = rng.choice((RESOLUTION_FULL, RESOLUTION_COARSE))
    cell_count = _SCHEMA.cell_count
    nnz = rng.choice((0, 1, rng.randint(2, 12), rng.randint(13, cell_count)))
    cells = sorted(rng.sample(range(cell_count), nnz))
    magnitude = rng.choice((8, 1 << 15, 1 << 31, 1 << 62))
    values = [rng.randint(1, magnitude) for _ in range(nnz)]
    sparse = SparseCube(
        schema=_SCHEMA,
        key=key,
        cells=np.array(cells, dtype=np.int64),
        values=np.array(values, dtype=np.int64),
        resolution=resolution,
    )
    if rng.random() < 0.5:
        return sparse.to_dense()
    return sparse


def test_round_trip_sweep():
    rng = random.Random(2024)
    for trial in range(150):
        cube = _random_cube(rng)
        version = rng.choice(_VERSIONS)
        data = serialize_cube(cube, version=version)
        restored = deserialize_cube(data, _SCHEMA)
        assert as_dense(restored) == as_dense(cube), (
            f"trial {trial}: v{version} round-trip changed the cube "
            f"(seed 2024, {cube!r})"
        )


def test_truncation_always_detected():
    rng = random.Random(77)
    for trial in range(60):
        cube = _random_cube(rng)
        version = rng.choice(_VERSIONS)
        data = serialize_cube(cube, version=version)
        cut = rng.randrange(len(data))
        with pytest.raises(PageCorruptError):
            deserialize_cube(data[:cut], _SCHEMA)


def test_bit_flips_never_yield_a_wrong_cube():
    rng = random.Random(4099)
    from repro.storage.serializer import HEADER_SIZE, page_version

    for trial in range(120):
        cube = _random_cube(rng)
        version = rng.choice(_VERSIONS)
        data = bytearray(serialize_cube(cube, version=version))
        # v1/v2 guarantee integrity of the payload only; v3's CRC
        # covers the whole page, so any byte is fair game there.
        floor = 0 if page_version(bytes(data)) == PAGE_VERSION_SPARSE else HEADER_SIZE
        position = rng.randrange(floor, len(data))
        flip = 1 << rng.randrange(8)
        data[position] ^= flip
        try:
            restored = deserialize_cube(bytes(data), _SCHEMA)
        except PageCorruptError:
            continue
        assert as_dense(restored) == as_dense(cube), (
            f"trial {trial}: v{version} byte {position} flip {flip:#x} "
            f"silently decoded a different cube (seed 4099)"
        )


def test_v3_flips_anywhere_raise():
    """v3's CRC covers the whole page, header included: a flip anywhere
    must raise (unlike v1/v2, whose CRC is payload-only for compat)."""
    rng = random.Random(515)
    cube = SparseCube(
        schema=_SCHEMA,
        key=day_key(date(2021, 3, 5)),
        cells=np.array([3, 40, 41, 200], dtype=np.int64),
        values=np.array([7, 1, 9, 2], dtype=np.int64),
    )
    data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
    for trial in range(80):
        mutated = bytearray(data)
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
        if bytes(mutated) == data:
            continue
        with pytest.raises(PageCorruptError):
            deserialize_cube(bytes(mutated), _SCHEMA)
