"""SLO burn-rate tracking against a fake clock.

The multi-window property under test: a sustained error burn fires the
page alert (short AND long window over threshold), a single bad blip
does not, and recovery un-pages as soon as the short window goes clean
— all driven deterministically by advancing an injected clock.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SLOConfig, SLOTracker
from repro.obs.slo import DEFAULT_ALERT_POLICIES, BurnAlertPolicy


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(**config):
    clock = FakeClock()
    tracker = SLOTracker(
        SLOConfig(**config), clock=clock, metrics=MetricsRegistry()
    )
    return tracker, clock


def alert_for(tracker, objective, severity):
    return next(
        a
        for a in tracker.alerts()
        if a.objective == objective and a.severity == severity
    )


class TestBurnRates:
    def test_no_traffic_means_zero_burn(self):
        tracker, _ = make_tracker()
        assert tracker.burn_rate("availability", 300.0) == 0.0
        assert not any(a.firing for a in tracker.alerts())

    def test_all_errors_burn_at_inverse_budget(self):
        tracker, clock = make_tracker(availability_target=0.999)
        for _ in range(10):
            tracker.record(ok=False, latency_seconds=0.01)
            clock.advance(1.0)
        # bad fraction 1.0 over a budget of 0.001 -> burn 1000.
        assert tracker.burn_rate("availability", 300.0) == pytest.approx(1000.0)

    def test_unknown_objective_raises(self):
        tracker, _ = make_tracker()
        tracker.record(ok=True, latency_seconds=0.01)
        with pytest.raises(ValueError):
            tracker.burn_rate("throughput", 300.0)

    def test_latency_objective_counts_slow_requests(self):
        tracker, clock = make_tracker(
            latency_target=0.9, latency_threshold_ms=100.0
        )
        for n in range(10):
            tracker.record(ok=True, latency_seconds=0.5 if n < 5 else 0.01)
            clock.advance(1.0)
        # Half the requests were slow against a 10% budget -> burn 5.
        assert tracker.burn_rate("latency", 300.0) == pytest.approx(5.0)
        assert tracker.burn_rate("availability", 300.0) == 0.0


class TestAlerts:
    def test_sustained_burn_fires_page_then_recovers(self):
        tracker, clock = make_tracker()
        # An hour of steady traffic where 1 in 10 requests errors:
        # availability burn = 0.1 / 0.001 = 100 > 14.4 in both the 5m
        # and 1h windows -> page fires.
        for n in range(360):
            tracker.record(ok=(n % 10 != 0), latency_seconds=0.01)
            clock.advance(10.0)
        page = alert_for(tracker, "availability", "page")
        assert page.firing
        assert page.short_burn > 14.4 and page.long_burn > 14.4
        assert alert_for(tracker, "availability", "ticket").firing

        # Recovery: the short window fills with clean traffic, so the
        # page un-fires even though the hour window still remembers.
        for _ in range(60):
            tracker.record(ok=True, latency_seconds=0.01)
            clock.advance(10.0)
        page = alert_for(tracker, "availability", "page")
        assert not page.firing
        assert page.short_burn <= 14.4
        assert page.long_burn > 0.0  # the long window has not forgotten

    def test_single_blip_does_not_page(self):
        tracker, clock = make_tracker()
        # An hour of clean traffic with one isolated error: the short
        # window burns hot briefly, but the hour-long window never
        # crosses threshold, so no page.
        tracker.record(ok=False, latency_seconds=0.01)
        for _ in range(359):
            tracker.record(ok=True, latency_seconds=0.01)
            clock.advance(10.0)
        assert not alert_for(tracker, "availability", "page").firing

    def test_alert_set_covers_both_objectives(self):
        tracker, _ = make_tracker()
        alerts = tracker.alerts()
        assert len(alerts) == 2 * len(DEFAULT_ALERT_POLICIES)
        assert {a.objective for a in alerts} == {"availability", "latency"}

    def test_custom_policy_windows(self):
        policy = BurnAlertPolicy("page", 30.0, 120.0, 2.0)
        tracker, clock = make_tracker(policies=(policy,))
        for _ in range(24):
            tracker.record(ok=False, latency_seconds=0.01)
            clock.advance(5.0)
        [availability, latency] = tracker.alerts()
        assert availability.firing
        assert availability.burn_threshold == 2.0
        assert not latency.firing


class TestWindowsAndPruning:
    def test_old_buckets_age_out_of_the_window(self):
        tracker, clock = make_tracker()
        tracker.record(ok=False, latency_seconds=0.01)
        assert tracker.burn_rate("availability", 300.0) > 0.0
        clock.advance(400.0)
        tracker.record(ok=True, latency_seconds=0.01)
        assert tracker.burn_rate("availability", 300.0) == 0.0

    def test_buckets_are_pruned_past_the_horizon(self):
        policy = BurnAlertPolicy("page", 30.0, 120.0, 2.0)
        tracker, clock = make_tracker(policies=(policy,))
        for _ in range(10 * tracker._horizon_buckets):
            tracker.record(ok=True, latency_seconds=0.01)
            clock.advance(10.0)
        assert len(tracker._buckets) <= tracker._horizon_buckets + 1

    def test_requests_are_metered(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(
            SLOConfig(latency_threshold_ms=100.0),
            clock=FakeClock(),
            metrics=registry,
        )
        tracker.record(ok=True, latency_seconds=0.01)
        tracker.record(ok=False, latency_seconds=0.5)
        assert registry.value("rased_slo_requests_total", outcome="ok") == 1
        assert registry.value("rased_slo_requests_total", outcome="error") == 1
        assert registry.value("rased_slo_slow_total") == 1


class TestSnapshot:
    def test_snapshot_shape(self):
        tracker, clock = make_tracker()
        for n in range(20):
            tracker.record(ok=(n != 0), latency_seconds=0.01)
            clock.advance(10.0)
        snap = tracker.snapshot()
        assert snap["objectives"]["availability_target"] == 0.999
        assert set(snap["windows"]) == {"300s", "3600s", "1800s", "21600s"}
        hour = snap["windows"]["3600s"]
        assert hour["total"] == 20 and hour["errors"] == 1
        assert hour["availability"] == pytest.approx(0.95)
        assert isinstance(snap["alerts"], list)
        assert snap["firing"] == [
            a for a in snap["alerts"] if a["firing"]
        ]

    def test_snapshot_with_no_traffic_uses_nulls(self):
        tracker, _ = make_tracker()
        snap = tracker.snapshot()
        assert snap["windows"]["300s"]["availability"] is None
        assert snap["firing"] == []
