"""End-to-end integration tests for the assembled RASED deployment."""

from __future__ import annotations

from datetime import date

import pytest

from repro.core.calendar import month_key
from repro.core.query import AnalysisQuery
from repro.storage.disk import DirectoryDisk, InMemoryDisk
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig
from tests.conftest import INGESTED_END, INGESTED_START


def fast_config(**sim_overrides):
    sim = dict(seed=21, mapper_count=20, base_sessions_per_day=5, nodes_per_country=8)
    sim.update(sim_overrides)
    return SystemConfig(
        road_types=8, cache_slots=12, simulation=SimulationConfig(**sim)
    )


class TestIngestedSystem:
    def test_daily_cubes_cover_span(self, ingested_system):
        coverage = ingested_system.index.coverage()
        assert coverage == (INGESTED_START, INGESTED_END)

    def test_rollups_materialized(self, ingested_system):
        assert ingested_system.index.has(month_key(2021, 1))
        assert ingested_system.index.has(month_key(2021, 2))

    def test_index_totals_match_truth(self, ingested_system):
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        total = ingested_system.dashboard.analysis(query).rows[()]
        truth_total = sum(
            len(rows) for rows in ingested_system.truth_by_day.values()
        )
        assert total == truth_total

    def test_warehouse_row_count_matches_truth(self, ingested_system):
        truth_total = sum(
            len(rows) for rows in ingested_system.truth_by_day.values()
        )
        assert ingested_system.warehouse.row_count == truth_total

    def test_pipeline_rerun_is_idempotent(self, ingested_system):
        """crawl_new() after everything is ingested does nothing."""
        report = ingested_system.pipeline.run_daily()
        assert report.days_processed == 0
        assert report.updates_indexed == 0


class TestMonthlyRebuildIntegration:
    def test_rebuilt_cubes_are_full_resolution(self, rebuilt_system):
        cube = rebuilt_system.index.get(month_key(2021, 1))
        assert cube.resolution == "full"

    def test_rebuild_preserves_totals(self, rebuilt_system):
        """Reclassification changes update types, never counts."""
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        total = rebuilt_system.dashboard.analysis(query).rows[()]
        truth_total = sum(
            len(rows) for rows in rebuilt_system.truth_by_day.values()
        )
        assert total == truth_total

    def test_rebuilt_types_match_truth(self, rebuilt_system):
        from collections import Counter

        query = AnalysisQuery(
            start=INGESTED_START, end=INGESTED_END, group_by=("update_type",)
        )
        rows = rebuilt_system.dashboard.analysis(query).rows
        truth = Counter(
            record.update_type
            for rows_ in rebuilt_system.truth_by_day.values()
            for record in rows_
        )
        assert {k[0]: v for k, v in rows.items()} == dict(truth)


class TestPersistence:
    def test_directory_backed_system_survives_restart(self, atlas, tmp_path):
        disk = DirectoryDisk(tmp_path / "pages", read_latency=0, write_latency=0)
        system = RasedSystem.create(
            root=tmp_path / "feeds",
            atlas=atlas,
            store=disk,
            config=fast_config(),
        )
        system.simulate_and_ingest(date(2021, 1, 1), date(2021, 1, 14))
        query = AnalysisQuery(
            start=date(2021, 1, 1), end=date(2021, 1, 14), group_by=("element_type",)
        )
        before = system.dashboard.analysis(query).rows

        # "Restart": a fresh system over the same page directory.
        disk2 = DirectoryDisk(tmp_path / "pages", read_latency=0, write_latency=0)
        reopened = RasedSystem.create(
            root=tmp_path / "feeds",
            atlas=atlas,
            store=disk2,
            config=fast_config(),
        )
        assert reopened.dashboard.analysis(query).rows == before
        # Warehouse-backed sample queries also survive.
        samples = reopened.dashboard.sample_updates("germany", n=3)
        assert isinstance(samples, list)

    def test_incremental_catchup_after_restart(self, atlas, tmp_path):
        disk = DirectoryDisk(tmp_path / "pages", read_latency=0, write_latency=0)
        system = RasedSystem.create(
            root=tmp_path / "feeds", atlas=atlas, store=disk, config=fast_config()
        )
        system.simulate_and_ingest(date(2021, 1, 1), date(2021, 1, 7))

        # New diffs arrive while the dashboard is down.
        for offset in range(7, 10):
            system.publish_day(date(2021, 1, 1 + offset))

        reopened = RasedSystem.create(
            root=tmp_path / "feeds",
            atlas=atlas,
            store=DirectoryDisk(tmp_path / "pages", read_latency=0, write_latency=0),
            config=fast_config(),
        )
        report = reopened.pipeline.run_daily()
        assert report.days_processed == 3
        assert reopened.index.coverage() == (date(2021, 1, 1), date(2021, 1, 10))


class TestCacheFreshness:
    def test_maintenance_refreshes_cached_cubes(self, atlas):
        system = RasedSystem.create(
            atlas=atlas,
            store=InMemoryDisk(read_latency=0, write_latency=0),
            config=fast_config(seed=33),
        )
        system.simulate_and_ingest(date(2021, 1, 1), date(2021, 1, 31))
        system.warm_cache()
        january = AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 1, 31))
        before = system.dashboard.analysis(january).rows[()]

        # A monthly rebuild rewrites cubes the cache holds; answers must
        # reflect the rebuilt (identical-total) cubes, not stale ones.
        system.simulate_and_ingest(
            date(2021, 2, 1), date(2021, 2, 1), monthly_rebuild=False
        )
        import tempfile
        from pathlib import Path

        history = Path(tempfile.mkstemp(suffix=".osm")[1])
        try:
            system.simulator.write_history_dump(history)
            system.pipeline.run_monthly(history, month_key(2021, 1))
        finally:
            history.unlink()
        after = system.dashboard.analysis(january).rows[()]
        assert after == before

    def test_warm_cache_reports_resident_count(self, ingested_system):
        loaded = ingested_system.warm_cache()
        assert loaded == ingested_system.cache.cached_count > 0


class TestColumnarKernelParity:
    """The sparse/v3/byte-cache configuration is a pure representation
    change: every dashboard answer must match the default deployment."""

    @pytest.fixture(scope="class")
    def system_pair(self, atlas):
        def build(**overrides):
            sim = SimulationConfig(
                seed=27, mapper_count=20, base_sessions_per_day=5, nodes_per_country=8
            )
            settings = {"road_types": 8, "cache_slots": 12, "simulation": sim}
            settings.update(overrides)
            system = RasedSystem.create(
                atlas=atlas,
                store=InMemoryDisk(read_latency=0, write_latency=0),
                config=SystemConfig(**settings),
            )
            system.simulate_and_ingest(date(2021, 1, 1), date(2021, 2, 14))
            system.warm_cache()
            return system

        default = build()
        columnar = build(
            page_version=3,
            sparse_cubes=True,
            cache_slots=0,
            cache_bytes=512 * 1024,
        )
        return default, columnar

    @pytest.mark.parametrize(
        "query",
        [
            AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 2, 14)),
            AnalysisQuery(
                start=date(2021, 1, 1),
                end=date(2021, 2, 14),
                group_by=("country", "update_type"),
            ),
            AnalysisQuery(
                start=date(2021, 1, 5),
                end=date(2021, 2, 9),
                group_by=("date",),
            ),
            AnalysisQuery(
                start=date(2021, 1, 1),
                end=date(2021, 1, 31),
                countries=("germany",),
                group_by=("element_type", "road_type"),
            ),
        ],
    )
    def test_answers_identical(self, system_pair, query):
        default, columnar = system_pair
        assert (
            columnar.dashboard.analysis(query).rows
            == default.dashboard.analysis(query).rows
        )

    def test_sparse_store_is_smaller(self, system_pair):
        default, columnar = system_pair
        assert columnar.store.stored_bytes < default.store.stored_bytes / 3

    def test_byte_cache_is_resident(self, system_pair):
        _, columnar = system_pair
        assert columnar.cache.byte_budget == 512 * 1024
        assert 0 < columnar.cache.cached_bytes <= 512 * 1024


class TestIngestReports:
    def test_report_aggregates_across_days(self, atlas):
        system = RasedSystem.create(
            atlas=atlas,
            store=InMemoryDisk(read_latency=0, write_latency=0),
            config=fast_config(seed=44),
        )
        report = system.simulate_and_ingest(date(2021, 3, 1), date(2021, 3, 7))
        assert report.days_processed == 7
        assert report.updates_indexed > 0
        assert report.warehouse_rows == report.updates_indexed
        assert len(report.cubes_written) >= 8  # 7 dailies + 1 weekly
