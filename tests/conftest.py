"""Shared fixtures for the RASED reproduction test suite.

The expensive fixtures (the zone atlas and a fully ingested system)
are session-scoped; tests must treat them as read-only.  Tests that
mutate state build their own small instances.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.core.dimensions import default_schema
from repro.geo.zones import build_world
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig

#: The span every session-scoped system has ingested.
INGESTED_START = date(2021, 1, 1)
INGESTED_END = date(2021, 2, 28)


@pytest.fixture(scope="session")
def atlas():
    """The deterministic 306-zone synthetic world (read-only)."""
    return build_world()


@pytest.fixture(scope="session")
def small_schema(atlas):
    """A reduced-road-type schema over the full zone set (read-only)."""
    return default_schema(atlas.zone_names(), road_types=8)


@pytest.fixture(scope="session")
def tiny_schema():
    """A 3-country schema for unit tests that don't need the atlas."""
    return default_schema(["united_states", "germany", "qatar"], road_types=8)


def build_test_system(atlas, *, seed=11, cache_slots=16, monthly_rebuild=False):
    """A small fully ingested deployment over INGESTED_START..END."""
    system = RasedSystem.create(
        atlas=atlas,
        store=InMemoryDisk(read_latency=0.0005, write_latency=0.0005),
        config=SystemConfig(
            road_types=8,
            cache_slots=cache_slots,
            simulation=SimulationConfig(
                seed=seed,
                mapper_count=25,
                base_sessions_per_day=6,
                nodes_per_country=8,
            ),
        ),
    )
    system.simulate_and_ingest(
        INGESTED_START, INGESTED_END, monthly_rebuild=monthly_rebuild
    )
    system.warm_cache()
    return system


@pytest.fixture(scope="session")
def ingested_system(atlas):
    """Two months of simulated history, daily-crawled (read-only)."""
    return build_test_system(atlas)


@pytest.fixture(scope="session")
def rebuilt_system(atlas):
    """Like ingested_system but with the monthly rebuild applied."""
    return build_test_system(atlas, seed=13, monthly_rebuild=True)
