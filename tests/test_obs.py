"""Tests for the observability layer (repro.obs) and its wiring.

Covers counter/histogram/trace semantics in isolation (quantile edges,
reset, thread-safety under concurrent increments), the Prometheus and
JSON exports, and — end to end — that a query through a RasedSystem
records cache-hit and disk-read metrics that reconcile with the page
store's DiskStats.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from datetime import date

import pytest

from repro.core.query import AnalysisQuery
from repro.dashboard.server import DashboardServer
from repro.obs import (
    MetricsRegistry,
    PhaseTiming,
    QueryTrace,
    get_registry,
    metric_key,
)


# -- counters ---------------------------------------------------------------


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        registry.inc("events_total")
        registry.inc("events_total", 4)
        assert registry.value("events_total") == 5

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", level="day")
        registry.inc("hits_total", 2, level="week")
        assert registry.value("hits_total", level="day") == 1
        assert registry.value("hits_total", level="week") == 2
        assert registry.total("hits_total") == 3

    def test_label_order_is_normalized(self):
        registry = MetricsRegistry()
        registry.inc("io_total", kind="read", store="mem")
        registry.inc("io_total", store="mem", kind="read")
        assert registry.value("io_total", kind="read", store="mem") == 2

    def test_prepared_key_matches_kwargs_path(self):
        registry = MetricsRegistry()
        key = metric_key("x_total", level="day")
        registry.inc_key(key, 3)
        assert registry.value("x_total", level="day") == 3

    def test_missing_series_reads_zero(self):
        assert MetricsRegistry().value("nope_total") == 0.0

    def test_record_batch_applies_all_under_one_lock(self):
        registry = MetricsRegistry()
        registry.record_batch(
            incs=[(metric_key("a_total"), 2.0), (metric_key("b_total"), 1.0)],
            observes=[(metric_key("c_seconds"), 0.5)],
        )
        assert registry.value("a_total") == 2.0
        assert registry.value("b_total") == 1.0
        assert registry.histogram_summary("c_seconds")["count"] == 1

    def test_record_batch_respects_disabled(self):
        registry = MetricsRegistry()
        registry.enabled = False
        registry.record_batch(incs=[(metric_key("a_total"), 1.0)])
        assert registry.value("a_total") == 0.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("a_total")
        registry.observe("b_seconds", 1.0)
        registry.reset()
        assert registry.value("a_total") == 0.0
        assert registry.histogram_summary("b_seconds") is None
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_disabled_registry_drops_writes(self):
        registry = MetricsRegistry()
        registry.enabled = False
        registry.inc("a_total")
        registry.observe("b_seconds", 1.0)
        assert registry.value("a_total") == 0.0
        assert registry.histogram_summary("b_seconds") is None

    def test_thread_safety_under_concurrent_increments(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 5000

        def hammer():
            for _ in range(per_thread):
                registry.inc("contended_total")
                registry.observe("contended_seconds", 0.001)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.value("contended_total") == threads * per_thread
        summary = registry.histogram_summary("contended_seconds")
        assert summary["count"] == threads * per_thread


# -- histograms -------------------------------------------------------------


class TestHistograms:
    def test_single_observation_pins_all_quantiles(self):
        registry = MetricsRegistry()
        registry.observe("latency_seconds", 0.25)
        summary = registry.histogram_summary("latency_seconds")
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == summary["mean"] == 0.25
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.25

    def test_quantiles_interpolate(self):
        registry = MetricsRegistry()
        for value in range(1, 101):  # 1..100
            registry.observe("v", float(value))
        summary = registry.histogram_summary("v")
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)

    def test_window_bounds_memory_but_not_count(self):
        registry = MetricsRegistry(histogram_window=16)
        for value in range(1000):
            registry.observe("w", float(value))
        summary = registry.histogram_summary("w")
        assert summary["count"] == 1000
        # Quantiles come from the most recent 16 observations.
        assert summary["p50"] >= 984.0

    def test_order_insensitive_quantiles(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for v in values:
            forward.observe("q", v)
        for v in reversed(values):
            backward.observe("q", v)
        assert (
            forward.histogram_summary("q")["p50"]
            == backward.histogram_summary("q")["p50"]
            == 3.0
        )


# -- exports ----------------------------------------------------------------


class TestExports:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", 2, level="day")
        registry.observe("lat_seconds", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits_total"] == [
            {"labels": {"level": "day"}, "value": 2.0}
        ]
        [hist] = snapshot["histograms"]["lat_seconds"]
        assert hist["labels"] == {} and hist["count"] == 1
        # The snapshot must be JSON-serializable as-is.
        json.dumps(snapshot)

    def test_prometheus_counters_and_summaries(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", 2, level="day")
        registry.observe("lat_seconds", 0.5)
        text = registry.to_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{level="day"} 2' in text
        assert "# TYPE lat_seconds summary" in text
        assert 'lat_seconds{quantile="0.5"} 0.5' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", label='a"b\\c\nd')
        text = registry.to_prometheus()
        assert 'odd_total{label="a\\"b\\\\c\\nd"} 1' in text

    def test_prometheus_text_parses_line_by_line(self):
        """Every non-comment line is `name{labels} value` with float value."""
        registry = MetricsRegistry()
        registry.inc("a_total", 3, kind="x")
        registry.observe("b_seconds", 0.1)
        registry.observe("b_seconds", 0.3)
        for line in registry.to_prometheus().strip().splitlines():
            if line.startswith("#"):
                parts = line.split()
                assert parts[0] == "#" and parts[1] in ("HELP", "TYPE")
                if parts[1] == "TYPE":
                    assert parts[3] in ("counter", "summary", "gauge")
                continue
            name_part, value_part = line.rsplit(" ", 1)
            float(value_part)
            assert name_part[0].isalpha()

    def test_every_family_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.inc("a_total")
        registry.observe("b_seconds", 0.2)
        lines = registry.to_prometheus().strip().splitlines()
        families = ("a_total", "b_seconds", "b_seconds_window_count")
        for family in families:
            help_index = lines.index(
                next(l for l in lines if l.startswith(f"# HELP {family} "))
            )
            # HELP immediately precedes TYPE for every family.
            assert lines[help_index + 1].startswith(f"# TYPE {family} ")

    def test_describe_round_trips_into_help(self):
        registry = MetricsRegistry()
        registry.describe("a_total", "Things that\nhappened \\ totally.")
        registry.inc("a_total")
        text = registry.to_prometheus()
        # Newlines and backslashes are escaped per the exposition format.
        assert "# HELP a_total Things that\\nhappened \\\\ totally." in text
        assert "\nThings that" not in text

    def test_undescribed_family_gets_generated_help(self):
        registry = MetricsRegistry()
        registry.inc("mystery_total")
        assert "# HELP mystery_total " in registry.to_prometheus()

    def test_summary_families_are_contiguous(self):
        """window_count gauges must not split their parent summary block."""
        registry = MetricsRegistry()
        registry.observe("a_seconds", 0.1, path="/x")
        registry.observe("a_seconds", 0.2, path="/y")
        registry.observe("b_seconds", 0.3)
        current: str | None = None
        seen: set[str] = set()
        for line in registry.to_prometheus().strip().splitlines():
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert family not in seen, f"family {family} split into blocks"
                seen.add(family)
                current = family
            elif not line.startswith("#"):
                name = line.split("{", 1)[0].split(" ", 1)[0]
                base = current or ""
                assert name == base or name.startswith(base + "_") or name == base

    def test_window_count_in_summary_and_exports(self):
        registry = MetricsRegistry(histogram_window=4)
        for value in range(10):
            registry.observe("w_seconds", float(value))
        summary = registry.histogram_summary("w_seconds")
        assert summary["count"] == 10
        assert summary["window_count"] == 4
        [entry] = registry.snapshot()["histograms"]["w_seconds"]
        assert entry["window_count"] == 4
        assert "w_seconds_window_count 4" in registry.to_prometheus()

    def test_scrape_under_concurrent_observes(self):
        """Scrapes copy under the lock and render outside it; hammering
        observes while scraping must neither crash nor corrupt output."""
        registry = MetricsRegistry(histogram_window=256)
        stop = threading.Event()
        errors: list[BaseException] = []

        def observe_loop():
            value = 0.0
            while not stop.is_set():
                value += 1.0
                registry.observe("hot_seconds", value, path="/analysis")
                registry.inc("hot_total")

        def scrape_loop():
            try:
                for _ in range(200):
                    text = registry.to_prometheus()
                    for line in text.strip().splitlines():
                        if not line.startswith("#"):
                            float(line.rsplit(" ", 1)[1])
                    registry.snapshot()
                    registry.histogram_summary("hot_seconds", path="/analysis")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [threading.Thread(target=observe_loop) for _ in range(4)]
        scraper = threading.Thread(target=scrape_loop)
        for thread in writers:
            thread.start()
        scraper.start()
        scraper.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert not errors


# -- traces -----------------------------------------------------------------


class TestQueryTrace:
    def test_empty_trace_is_falsy(self):
        assert not QueryTrace("q")

    def test_add_accumulates(self):
        trace = QueryTrace("q")
        trace.add("phase1.fetch.disk", 0.010)
        trace.add("phase1.fetch.disk", 0.020)
        assert trace.phases["phase1.fetch.disk"].seconds == pytest.approx(0.030)
        assert trace.phases["phase1.fetch.disk"].count == 2
        assert trace.total_seconds == pytest.approx(0.030)
        assert "phase1.fetch.disk" in trace

    def test_span_times_a_block(self):
        trace = QueryTrace("q")
        with trace.span("work"):
            pass
        assert trace.phases["work"].count == 1
        assert trace.phases["work"].seconds >= 0.0

    def test_format_and_to_dict(self):
        trace = QueryTrace("my query")
        trace.add("phase1.plan", 0.001)
        trace.add("phase2.aggregate", 0.003)
        trace.meta["cubes"] = 4
        rendered = trace.format()
        assert "my query" in rendered
        assert "phase1.plan" in rendered and "phase2.aggregate" in rendered
        as_dict = trace.to_dict()
        assert as_dict["meta"] == {"cubes": 4}
        assert [p["phase"] for p in as_dict["phases"]] == [
            "phase1.plan",
            "phase2.aggregate",
        ]
        json.dumps(as_dict)


# -- default registry -------------------------------------------------------


def test_default_registry_is_a_singleton():
    assert get_registry() is get_registry()
    assert isinstance(get_registry(), MetricsRegistry)


# -- integration: a query through a full system -----------------------------


QUERY = AnalysisQuery(
    start=date(2021, 1, 5),
    end=date(2021, 2, 10),
    group_by=("country",),
)


class TestSystemIntegration:
    def test_query_records_trace_with_both_phases(self, ingested_system):
        result = ingested_system.dashboard.analysis(QUERY)
        trace = result.stats.trace
        assert trace is not None and trace
        phases = trace.phases
        assert "phase1.plan" in phases
        assert "phase2.aggregate" in phases
        zero = PhaseTiming(0.0, 0)
        fetched = (
            phases.get("phase1.fetch.cache", zero).count
            + phases.get("phase1.fetch.disk", zero).count
        )
        assert fetched == result.stats.cube_count
        assert trace.meta["cubes"] == result.stats.cube_count

    def test_metrics_reconcile_with_disk_stats(self, ingested_system):
        system = ingested_system
        registry = system.metrics
        reads_before = registry.total("rased_disk_reads_total")
        hits_before = registry.total("rased_cache_hits_total")
        disk_before = system.store.stats.snapshot()

        result = system.dashboard.analysis(QUERY)

        disk_delta = system.store.stats.delta(disk_before)
        reads_delta = registry.total("rased_disk_reads_total") - reads_before
        hits_delta = registry.total("rased_cache_hits_total") - hits_before
        # Registry and DiskStats observe the exact same page reads.
        assert reads_delta == disk_delta.reads
        # Executor-level accounting agrees with the cache's own series.
        assert hits_delta == result.stats.cache_hits
        assert result.stats.cube_count == (
            result.stats.cache_hits + result.stats.disk_reads
        )

    def test_query_latency_histogram_grows(self, ingested_system):
        registry = ingested_system.metrics
        before = registry.histogram_summary("rased_query_wall_seconds")
        count_before = before["count"] if before else 0
        ingested_system.dashboard.analysis(QUERY)
        after = registry.histogram_summary("rased_query_wall_seconds")
        assert after["count"] == count_before + 1
        assert after["sum"] > 0

    def test_systems_have_isolated_registries(self, ingested_system):
        other = MetricsRegistry()
        assert ingested_system.metrics is not other
        assert ingested_system.metrics is not get_registry()

    def test_optimizer_estimates_cover_actual_reads(self, ingested_system):
        system = ingested_system
        registry = system.metrics
        est_before = registry.value("rased_optimizer_estimated_disk_reads_total")
        actual_before = registry.value("rased_query_cubes_total", source="disk")
        system.dashboard.analysis(QUERY)
        est_delta = (
            registry.value("rased_optimizer_estimated_disk_reads_total")
            - est_before
        )
        actual_delta = (
            registry.value("rased_query_cubes_total", source="disk")
            - actual_before
        )
        # The plan's estimate is exact for a static cache (no query-time
        # admission on this deployment).
        assert est_delta == actual_delta
        assert registry.value("rased_optimizer_plans_total") > 0
        assert registry.value("rased_optimizer_units_considered_total") > 0


# -- /metrics endpoint ------------------------------------------------------


class TestMetricsEndpoint:
    @pytest.fixture(scope="class")
    def server(self, ingested_system):
        with DashboardServer(ingested_system.dashboard) as running:
            yield running

    def test_prometheus_default(self, server, ingested_system):
        # Exercise a query so latency series exist.
        body = json.dumps(
            {"start": "2021-01-05", "end": "2021-02-10", "group_by": ["country"]}
        ).encode()
        request = urllib.request.Request(
            server.url + "/analysis", data=body, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["stats"]["trace"]["phases"]

        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        assert "rased_cache_hits_total" in text
        assert "rased_disk_reads_total" in text
        assert 'rased_query_wall_seconds{quantile="0.5"}' in text
        # Prometheus-parsable: every line is a comment or name+value.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_json_format(self, server):
        with urllib.request.urlopen(
            server.url + "/metrics?format=json"
        ) as response:
            snapshot = json.loads(response.read())
        assert "counters" in snapshot and "histograms" in snapshot
        assert "rased_disk_reads_total" in snapshot["counters"]

    def test_unknown_format_is_rejected(self, server):
        request = urllib.request.Request(server.url + "/metrics?format=xml")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_http_requests_are_measured(self, server, ingested_system):
        with urllib.request.urlopen(server.url + "/health"):
            pass
        registry = ingested_system.metrics
        assert (
            registry.value(
                "rased_http_requests_total", path="/health", status="200"
            )
            >= 1
        )
        summary = registry.histogram_summary(
            "rased_http_request_seconds", path="/health"
        )
        assert summary is not None and summary["count"] >= 1
