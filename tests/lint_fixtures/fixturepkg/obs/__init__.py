"""Fixture sibling of osm (same DAG level)."""

registry = None
