"""Fixture: sideways import between same-level siblings (osm -> obs)."""

from fixturepkg.obs import registry  # noqa: F401
