"""Fixture: axis-order checks in a presentation (non-strict) package."""

PRESENTATION_PARTIAL = ("road_type", "country")
FULL_BAD = ("country", "element_type", "road_type", "update_type")
