"""Fixture: metric-name hygiene for the admission family of metrics.

The real admission layer writes ``rased_admission_*`` series from the
``dashboard`` package (not an obs package), so the rule must cover it:
literals passed to registry writers or minted via ``metric_key()``
inside functions are violations; module-scope constants are fine.
"""

_M_SHED_OK = metric_key("rased_admission_shed_total")  # noqa: F821  module scope: fine


def shed(registry) -> None:
    registry.inc("rased_admission_requests_total", decision="shed")


def deadline_key() -> object:
    return metric_key("rased_admission_deadline_hits_total")  # noqa: F821


def shed_prepared(registry) -> None:
    registry.inc_key(_M_SHED_OK)
