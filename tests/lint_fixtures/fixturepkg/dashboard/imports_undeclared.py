"""Fixture: importing a package missing from the layer DAG."""

from fixturepkg.notalayer import thing  # noqa: F401
