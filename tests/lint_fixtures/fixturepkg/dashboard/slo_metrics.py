"""Fixture: metric-name hygiene for the SLO and trace metric families.

The observability layer mints ``rased_slo_*`` (burn-rate accounting)
and ``rased_trace_*`` (flight-recorder retention) series; consumers
outside the obs packages must follow the same discipline as every
other family — prepared module-scope keys only.
"""

_M_SLO_OK = metric_key("rased_slo_requests_total", outcome="ok")  # noqa: F821  module scope: fine

_M_TRACE_KEPT = metric_key("rased_trace_kept_total", reason="error")  # noqa: F821  module scope: fine


def record_request(registry) -> None:
    registry.inc("rased_slo_requests_total", outcome="error")


def trace_dropped_key() -> object:
    return metric_key("rased_trace_dropped_total")  # noqa: F821


def record_prepared(registry) -> None:
    registry.inc_key(_M_SLO_OK)
    registry.inc_key(_M_TRACE_KEPT)
