"""Fixture: upward import (errors -> core), half of a package cycle."""

from fixturepkg.core.clock import hot_now  # noqa: F401

FIXTURE_ERROR = ValueError
