"""Fixture: mutations of a ``# guarded-by:`` attribute outside the lock."""

import threading
from collections import OrderedDict


class GuardedStore:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: OrderedDict[str, int] = OrderedDict()  # guarded-by: _lock

    def admit(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value  # held: must NOT be flagged

    def rogue_assign(self, key: str, value: int) -> None:
        self._items[key] = value  # unguarded subscript store

    def rogue_pop(self, key: str) -> None:
        self._items.pop(key, None)  # unguarded mutator call
