"""Fixture: a lock-order cycle plus a non-reentrant self-deadlock.

``credit`` acquires the audit lock *through a method call* while
holding the ledger lock (the interprocedural edge the analyzer must
resolve); ``audit`` nests the same two locks in the opposite order,
closing the cycle.  ``reenter`` re-acquires a non-reentrant lock it
already holds, again through a call.
"""

import threading


class Transfer:
    def __init__(self) -> None:
        self._ledger_lock = threading.Lock()
        self._audit_lock = threading.Lock()
        self._entries: list[int] = []

    def credit(self, amount: int) -> None:
        with self._ledger_lock:
            self._entries.append(amount)
            self._record()  # acquires _audit_lock under _ledger_lock

    def _record(self) -> None:
        with self._audit_lock:
            self._entries.append(0)

    def audit(self) -> int:
        with self._audit_lock:
            with self._ledger_lock:  # reverse nesting: closes the cycle
                return len(self._entries)

    def reenter(self) -> None:
        with self._ledger_lock:
            self._helper()

    def _helper(self) -> None:
        with self._ledger_lock:  # non-reentrant re-acquire: self-deadlock
            self._entries.clear()
