"""Fixture: single-flight dedup map with one mutation outside its lock."""

import threading


class SingleFlight:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, object] = {}  # guarded-by: _lock

    def begin(self, key: str, token: object) -> None:
        with self._lock:
            self._inflight[key] = token  # held: must NOT be flagged

    def finish(self, key: str) -> None:
        self._inflight.pop(key, None)  # unguarded inflight pop
