"""Fixture: thread boundaries that drop (and ones that carry) ambient
context.

``submit_racy`` and ``start_worker_racy`` hand work to another thread
without capturing the ambient span/deadline.  ``submit_safe`` captures
both and passes them as arguments; ``start_worker_safe`` targets a
worker that re-attaches inside itself.  Only the racy pair may be
flagged.

The capture/attach helpers are local stand-ins for
``repro.obs.span`` / ``repro.core.deadline`` — the rule matches the
hand-off *shape* by name, and the fixture tree never imports repro.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


def current_span() -> object | None:
    return None


def current_deadline() -> object | None:
    return None


def set_ambient(span: object | None) -> object | None:
    return span


class deadline_scope:
    def __init__(self, deadline: object | None) -> None:
        self.deadline = deadline

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


class PoolUser:
    def __init__(self) -> None:
        self._pool = ThreadPoolExecutor(max_workers=2)

    def submit_racy(self, key: str):
        return self._pool.submit(self._run, None, None, key)

    def submit_safe(self, key: str):
        span = current_span()
        deadline = current_deadline()
        return self._pool.submit(self._run, span, deadline, key)

    def _run(self, span: object | None, deadline: object | None, key: str) -> str:
        return key

    def start_worker_racy(self) -> threading.Thread:
        worker = threading.Thread(target=self._plain)
        worker.start()
        return worker

    def start_worker_safe(self) -> threading.Thread:
        worker = threading.Thread(target=self._attached)
        worker.start()
        return worker

    def _plain(self) -> None:
        return None

    def _attached(self) -> None:
        set_ambient(current_span())
        with deadline_scope(None):
            return None
