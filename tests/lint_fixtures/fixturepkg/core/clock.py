"""Fixture: wall-clock reads in a hot-path package + cycle's other half."""

import time
from datetime import datetime

from fixturepkg.errors import FIXTURE_ERROR  # noqa: F401  (downward, legal)


def hot_now() -> float:
    return time.time()


def stamp() -> str:
    return datetime.now().isoformat()
