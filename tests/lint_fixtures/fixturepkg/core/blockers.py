"""Fixture: blocking calls under a held lock, direct and transitive.

``flush_direct`` sleeps inside the critical section; ``flush_transitive``
calls a helper that sleeps (the analyzer must follow the call graph to
see it).  ``flush_safely`` does the blocking work *before* taking the
lock and must not be flagged.
"""

import threading
import time


class SnapshotWriter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots = 0

    def flush_direct(self) -> None:
        with self._lock:
            time.sleep(0.001)  # blocking while holding _lock
            self._snapshots += 1

    def flush_transitive(self) -> None:
        with self._lock:
            self._drain()  # transitively reaches time.sleep
            self._snapshots += 1

    def _drain(self) -> None:
        time.sleep(0.001)

    def flush_safely(self) -> None:
        self._drain()  # blocking done before the lock: must NOT be flagged
        with self._lock:
            self._snapshots += 1
