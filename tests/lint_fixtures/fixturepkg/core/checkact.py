"""Fixture: atomicity violations on a ``# guarded-by:`` attribute.

``bump_racy`` reads the guarded map outside the lock and writes the
stale value back inside it (check-then-act); ``drain_racy`` reads under
the lock, releases it, and writes the derived value under a *second*
acquisition (read-modify-write across a release).  ``bump_safe`` does
the whole sequence under one acquisition and ``refresh_double_checked``
re-validates inside the critical section — neither may be flagged.
"""

import threading


class TallyBoard:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}  # guarded-by: _lock

    def bump_racy(self, key: str) -> None:
        current = self._counts.get(key, 0)  # stale the moment it's read
        with self._lock:
            self._counts[key] = current + 1

    def drain_racy(self, key: str) -> None:
        with self._lock:
            pending = self._counts.get(key, 0)
        with self._lock:
            self._counts[key] = pending - 1

    def bump_safe(self, key: str) -> None:
        with self._lock:
            current = self._counts.get(key, 0)
            self._counts[key] = current + 1

    def refresh_double_checked(self, key: str, value: int) -> None:
        if key not in self._counts:
            return
        with self._lock:
            if key in self._counts:  # re-validated under the lock
                self._counts[key] = value
