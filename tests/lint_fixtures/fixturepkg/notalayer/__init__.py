"""Fixture: a package that is missing from the declared layer DAG."""

thing = object()
