"""Fixture: exception-handling and default-argument hygiene."""


def swallow() -> None:
    try:
        raise ValueError("boom")
    except Exception:
        pass


def drop() -> int:
    try:
        return 1
    except Exception:
        return 0


def justified() -> int:
    try:
        return 1
    except Exception:  # lint: allow[broad-except] fixture demonstrates suppression
        return 0


def narrow() -> int:
    try:
        return 1
    except ValueError:
        return 0


def bad_default(items=[]) -> list:
    return items


def now() -> float:
    # Wall clock outside the hot-path packages: must NOT be flagged.
    import time

    return time.time()


# TODO: one tracked fixture comment for the todo rule
