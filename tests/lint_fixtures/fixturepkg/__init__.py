"""Deliberately broken package tree exercising every lint rule.

Scanned by ``tests/test_lint.py`` via ``run_lint(package_root=...,
config=LintConfig(top_package="fixturepkg"))``.  Never imported —
pytest collects only ``test_*``/``bench_*`` files, and several modules
here reference undefined names on purpose.
"""
