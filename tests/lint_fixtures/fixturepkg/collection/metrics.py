"""Fixture: metric-name hygiene outside the obs packages."""

_K_OK = metric_key("rased_prepared_total")  # noqa: F821  module scope: fine


def record(registry) -> None:
    registry.inc("rased_fixture_total")


def inline_key() -> object:
    return metric_key("rased_inline_total")  # noqa: F821


def prepared(registry) -> None:
    registry.inc_key(_K_OK)
