"""Fixture: an upward import that is type-only, hence exempt."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from fixturepkg.core.clock import hot_now


def annotate(clock: "hot_now") -> None:
    return None
