"""Fixture: axis-order checks in a strict (construction) package."""

BAD_PARTIAL = ("country", "element_type")
GOOD_FULL = ("element_type", "country", "road_type", "update_type")
GOOD_PARTIAL = ("element_type", "road_type")
NOT_A_SCHEMA = ("country", COUNTRY_COUNT)  # noqa: F821  non-literal member
