"""Fixture: axis order on the sparse COO kernel path (strict package).

The sparse page encoder flattens cube coordinates to cell indices, so
an out-of-order axis tuple here silently permutes every decoded cell —
exactly the bug class the cube-order rule exists to catch.
"""

SPARSE_DECODE_BAD = ("road_type", "country", "element_type", "update_type")
SPARSE_DECODE_GOOD = ("element_type", "country", "road_type", "update_type")
SPARSE_PARTIAL_GOOD = ("element_type", "update_type")
