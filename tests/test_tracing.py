"""Causal span tracing: span trees, cross-thread propagation, the
flight recorder's tail-based retention, and the HTTP ``/debug`` dump
surface.

The load-bearing properties:

* a query fanned out over the I/O scheduler's pool produces ONE
  connected tree — every pool-thread disk read resolves to a parent in
  the same trace (no orphans);
* a single-flight *follower* records a wait span pointing at the
  leader's trace, not a phantom load of its own;
* error / partial / deadline-exceeded traces are always retained by the
  recorder, no matter the sampling knobs;
* the classic :class:`QueryTrace` phase view and the span tree stay
  mutually derivable (``flush_spans`` / ``from_spans``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from datetime import date

import pytest

from repro.core.deadline import Deadline, deadline_scope
from repro.core.iosched import IOScheduler
from repro.core.query import AnalysisQuery
from repro.dashboard.admission import AdmissionConfig, AdmissionController
from repro.dashboard.server import DashboardServer
from repro.errors import DeadlineExceededError
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    QueryTrace,
    RecordedTrace,
    Tracer,
    attach,
    current_span,
    current_trace_id,
    record_span,
    span,
)


class _ListSink:
    """A trace sink that just remembers everything it was handed."""

    def __init__(self) -> None:
        self.traces: list[RecordedTrace] = []

    def record(self, trace: RecordedTrace) -> None:
        self.traces.append(trace)


def _assert_connected(trace: RecordedTrace) -> None:
    ids = {s.span_id for s in trace.spans}
    for s in trace.spans:
        if s.parent_id is not None:
            assert s.parent_id in ids, f"orphan span {s.name}"


def _made_trace(
    trace_id: str, status: str = "ok", duration: float = 0.001
) -> RecordedTrace:
    return RecordedTrace(
        trace_id=trace_id,
        name="t",
        started_unix=float(int(trace_id, 36) if trace_id.isalnum() else 0),
        duration_seconds=duration,
        status=status,
        spans=[],
        dropped_spans=0,
    )


# -- span primitives --------------------------------------------------------


class TestSpans:
    def test_untraced_context_is_a_noop(self):
        assert current_span() is None
        assert current_trace_id() is None
        with span("anything") as s:
            assert s is None
        record_span("retro", 0.5)  # must not raise

    def test_tracer_builds_a_tree(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        with tracer.trace("root") as root:
            root.set_attribute("k", 1)
            with span("child") as child:
                with span("grandchild") as grand:
                    assert grand.parent_id == child.span_id
                assert child.parent_id == root.span_id
        [trace] = sink.traces
        assert trace.status == "ok"
        assert sorted(trace.span_names()) == ["child", "grandchild", "root"]
        _assert_connected(trace)
        roots = [s for s in trace.spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].attributes == {"k": 1}

    def test_nested_trace_degrades_to_child_span(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        with tracer.trace("outer"):
            with tracer.trace("inner") as inner:
                assert inner.parent_id is not None
        assert len(sink.traces) == 1  # no double root

    def test_disabled_tracer_yields_none(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink, enabled=False)
        with tracer.trace("root") as root:
            assert root is None
            assert current_span() is None
        assert sink.traces == []

    def test_exception_marks_span_and_trace(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                with span("work"):
                    raise RuntimeError("boom")
        [trace] = sink.traces
        assert trace.status == "error"
        failed = next(s for s in trace.spans if s.name == "work")
        assert failed.status == "error" and "boom" in failed.error

    def test_partial_child_degrades_trace_status(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        with tracer.trace("root"):
            with span("answer") as s:
                s.mark_partial()
        assert sink.traces[0].status == "partial"

    def test_record_span_backdates_offset(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        with tracer.trace("root"):
            record_span("accumulated", 0.25, count=3, attributes={"x": 1})
        [trace] = sink.traces
        retro = next(s for s in trace.spans if s.name == "accumulated")
        assert retro.duration_seconds == 0.25
        assert retro.offset_seconds == 0.0  # clamped, not negative
        assert retro.attributes["count"] == 3 and retro.attributes["x"] == 1

    def test_span_cap_drops_excess_but_keeps_root(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink, max_spans=4)
        with tracer.trace("root"):
            for n in range(10):
                with span(f"s{n}"):
                    pass
        [trace] = sink.traces
        assert "root" in trace.span_names()
        assert len(trace.spans) == 5  # 4 children + the always-kept root
        assert trace.dropped_spans == 6

    def test_attach_carries_span_across_threads(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        seen: list[str | None] = []

        def worker(parent):
            with attach(parent):
                seen.append(current_trace_id())
                with span("threaded"):
                    pass

        with tracer.trace("root") as root:
            thread = threading.Thread(target=worker, args=(current_span(),))
            thread.start()
            thread.join()
            expected = root.trace_id
        [trace] = sink.traces
        assert seen == [expected]
        assert "threaded" in trace.span_names()
        _assert_connected(trace)


# -- QueryTrace as a view over the span tree --------------------------------


class TestPhaseView:
    def test_flush_and_from_spans_round_trip(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        qtrace = QueryTrace("q")
        qtrace.add("phase1.plan", 0.010)
        qtrace.add("phase1.fetch.disk", 0.020)
        qtrace.add("phase1.fetch.disk", 0.030)
        with tracer.trace("query"):
            qtrace.flush_spans()
        [trace] = sink.traces
        rebuilt = QueryTrace.from_spans(trace.spans, name="query")
        assert rebuilt.phases["phase1.plan"].seconds == pytest.approx(0.010)
        assert rebuilt.phases["phase1.fetch.disk"].seconds == pytest.approx(
            0.050
        )
        assert rebuilt.phases["phase1.fetch.disk"].count == 2

    def test_flush_without_trace_is_a_noop(self):
        qtrace = QueryTrace("q")
        qtrace.add("phase1.plan", 0.010)
        qtrace.flush_spans()  # no ambient trace: must not raise


# -- flight recorder --------------------------------------------------------


class TestFlightRecorder:
    def test_errors_and_partials_always_retained(self):
        recorder = FlightRecorder(
            capacity=8, sample_every=0, metrics=MetricsRegistry()
        )
        recorder.record(_made_trace("err1", status="error"))
        recorder.record(_made_trace("part1", status="partial"))
        for n in range(20):
            recorder.record(_made_trace(f"ok{n}", status="ok"))
        assert recorder.get("err1") is not None
        assert recorder.get("part1") is not None
        assert [t.trace_id for t in recorder.list(status="error")] == ["err1"]

    def test_every_nth_ok_trace_is_sampled(self):
        recorder = FlightRecorder(
            capacity=64, sample_every=4, metrics=MetricsRegistry()
        )
        for n in range(12):
            recorder.record(_made_trace(f"ok{n}"))
        stats = recorder.stats()
        assert stats["sampled"] == 3  # traces 0, 4, 8
        assert stats["dropped"] == 9

    def test_slow_decile_always_retained(self):
        recorder = FlightRecorder(
            capacity=64, sample_every=0, metrics=MetricsRegistry()
        )
        # Build a population of fast traces, then a clear outlier.
        for n in range(40):
            recorder.record(_made_trace(f"fast{n}", duration=0.001))
        recorder.record(_made_trace("whale", duration=5.0))
        assert recorder.get("whale") is not None
        assert recorder.stats()["slow_threshold_ms"] is not None

    def test_cold_recorder_does_not_flag_first_traces_slow(self):
        recorder = FlightRecorder(
            capacity=64, sample_every=0, metrics=MetricsRegistry()
        )
        recorder.record(_made_trace("first", duration=9.0))
        assert recorder.get("first") is None  # population too small

    def test_rings_are_bounded_fifo(self):
        recorder = FlightRecorder(
            capacity=4, sample_every=1, metrics=MetricsRegistry()
        )
        for n in range(10):
            recorder.record(_made_trace(f"e{n}", status="error"))
            recorder.record(_made_trace(f"s{n}", status="ok"))
        stats = recorder.stats()
        assert stats["retained"] == 4 and stats["sampled"] == 4
        assert recorder.get("e0") is None  # evicted
        assert recorder.get("e9") is not None

    def test_list_is_newest_first_and_limited(self):
        recorder = FlightRecorder(
            capacity=64, sample_every=1, metrics=MetricsRegistry()
        )
        for n in range(6):
            trace = _made_trace(f"t{n}")
            trace.started_unix = float(n)
            recorder.record(trace)
        listed = recorder.list(limit=3)
        assert [t.trace_id for t in listed] == ["t5", "t4", "t3"]

    def test_retention_reasons_are_metered(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=8, sample_every=1, metrics=registry)
        recorder.record(_made_trace("a", status="error"))
        recorder.record(_made_trace("b", status="ok"))
        assert registry.value("rased_trace_kept_total", reason="error") == 1
        assert registry.value("rased_trace_kept_total", reason="sampled") == 1

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.record(_made_trace("a", status="error"))
        recorder.clear()
        assert recorder.get("a") is None
        assert recorder.stats()["seen"] == 0


# -- the I/O scheduler under a trace ----------------------------------------


class TestIoschedPropagation:
    def test_pool_fanout_yields_one_connected_tree(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        scheduler = IOScheduler(max_workers=4, metrics=MetricsRegistry())
        try:
            with tracer.trace("query"):
                batch = scheduler.fetch_many(
                    [f"page-{n}" for n in range(6)], lambda key: key.upper()
                )
        finally:
            scheduler.shutdown()
        assert batch.led == 6
        [trace] = sink.traces
        _assert_connected(trace)
        loads = [s for s in trace.spans if s.name == "iosched.load"]
        assert len(loads) == 6
        # The loads genuinely ran on pool threads, not inline.
        assert any(s.thread_name.startswith("rased-io") for s in loads)
        assert "iosched.batch" in trace.span_names()

    def test_single_flight_follower_references_leader_trace(self):
        sink = _ListSink()
        tracer = Tracer(recorder=sink)
        registry = MetricsRegistry()
        scheduler = IOScheduler(max_workers=2, metrics=registry)
        release = threading.Event()
        loading = threading.Event()
        leader_ids: list[str] = []

        def slow_load(key):
            loading.set()
            assert release.wait(timeout=5.0)
            return "value"

        def leader():
            with tracer.trace("leader-query") as root:
                leader_ids.append(root.trace_id)
                value, led = scheduler.fetch("hot-page", slow_load)
                assert led and value == "value"

        def follower():
            with tracer.trace("follower-query"):
                value, led = scheduler.fetch(
                    "hot-page", lambda key: "never-called"
                )
                assert not led and value == "value"

        leader_thread = threading.Thread(target=leader)
        follower_thread = threading.Thread(target=follower)
        leader_thread.start()
        try:
            assert loading.wait(timeout=5.0)
            follower_thread.start()
            # Release the leader only after the follower has joined the
            # in-flight entry (the coalesced counter ticks on that path)
            # so the follower never becomes a leader of its own.
            deadline = time.monotonic() + 5.0
            while (
                registry.value("rased_iosched_coalesced_total") < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.001)
            assert registry.value("rased_iosched_coalesced_total") >= 1
        finally:
            release.set()
            leader_thread.join(timeout=5.0)
            follower_thread.join(timeout=5.0)
            scheduler.shutdown()

        by_name = {t.name: t for t in sink.traces}
        follower_trace = by_name["follower-query"]
        wait = next(
            s for s in follower_trace.spans if s.name == "iosched.wait"
        )
        assert wait.attributes["coalesced"] is True
        assert wait.attributes["leader_trace_id"] == leader_ids[0]
        leader_trace = by_name["leader-query"]
        assert "iosched.load" in leader_trace.span_names()
        assert "iosched.wait" not in leader_trace.span_names()


# -- executor / system level ------------------------------------------------


QUERY = AnalysisQuery(
    start=date(2021, 1, 5),
    end=date(2021, 2, 10),
    group_by=("country",),
)


class TestExecutorTracing:
    def test_query_execution_records_a_connected_trace(self, ingested_system):
        system = ingested_system
        before = {t.trace_id for t in system.recorder.list(limit=10_000)}
        system.dashboard.analysis(QUERY)
        fresh = [
            t
            for t in system.recorder.list(limit=10_000)
            if t.trace_id not in before and t.name == "query.execute"
        ]
        # The recorder samples ok traces; at least run the structural
        # check when this one was kept (the first per-session query
        # always is: sampling starts at counter zero).
        for trace in fresh:
            _assert_connected(trace)
            assert "phase2.aggregate" in trace.span_names()

    def test_deadline_expired_trace_is_always_retained(self, ingested_system):
        system = ingested_system
        fake_now = [100.0]
        expired = Deadline(0.001, clock=lambda: fake_now[0])
        fake_now[0] += 10.0  # long past the budget
        before = {t.trace_id for t in system.recorder.list(limit=10_000)}
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceededError):
                system.executor.execute(QUERY)
        fresh = [
            t
            for t in system.recorder.list(limit=10_000, status="error")
            if t.trace_id not in before
        ]
        assert len(fresh) == 1
        assert "DeadlineExceeded" in fresh[0].spans[0].error


# -- HTTP end to end --------------------------------------------------------


class TestHttpTracing:
    @pytest.fixture()
    def traced_server(self, ingested_system):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        tracer = Tracer(recorder=recorder)
        admission = AdmissionController(
            AdmissionConfig(default_deadline_ms=60_000),
            metrics=MetricsRegistry(),
        )
        server = DashboardServer(
            ingested_system.dashboard,
            admission=admission,
            tracer=tracer,
            recorder=recorder,
        )
        with server:
            yield server, recorder

    def _analysis(self, server):
        body = json.dumps(
            {"start": "2021-01-05", "end": "2021-02-10", "group_by": ["country"]}
        ).encode()
        request = urllib.request.Request(
            server.url + "/analysis", data=body, method="POST"
        )
        return urllib.request.urlopen(request)

    def test_request_yields_one_retrievable_connected_tree(
        self, traced_server
    ):
        server, recorder = traced_server
        with self._analysis(server) as response:
            trace_id = response.headers["X-Trace-Id"]
            assert trace_id
        with urllib.request.urlopen(
            server.url + f"/debug/traces/{trace_id}"
        ) as response:
            tree = json.loads(response.read())
        assert tree["trace_id"] == trace_id
        spans = tree["span_tree"]
        ids = {s["span_id"] for s in spans}
        for s in spans:
            if s["parent_id"] is not None:
                assert s["parent_id"] in ids, f"orphan {s['name']}"
        names = {s["name"] for s in spans}
        # Admission verdict, executor phases, and the pool-thread disk
        # reads all landed in the single request tree.
        assert "http.request" in names
        assert "dashboard.admission" in names
        assert "query.execute" in names
        assert "phase1.plan" in names or "core.resultcache.get" in names
        assert "phase2.aggregate" in names
        disk_reads = [s for s in spans if s["name"] == "storage.disk.read"]
        for s in disk_reads:
            assert s["parent_id"] in ids
        # The flat phase view is served alongside the tree.
        assert tree["phases"]["name"] == "http.request"

    def test_server_error_trace_is_retained(
        self, traced_server, ingested_system, monkeypatch
    ):
        server, recorder = traced_server

        def explode(query):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(ingested_system.dashboard, "analysis", explode)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._analysis(server)
        assert excinfo.value.code == 500
        trace_id = excinfo.value.headers["X-Trace-Id"]
        assert trace_id  # error responses carry the id too
        retained = recorder.get(trace_id)
        assert retained is not None and retained.status == "error"

    def test_trace_listing_and_missing_id(self, traced_server):
        server, recorder = traced_server
        with self._analysis(server):
            pass
        with urllib.request.urlopen(
            server.url + "/debug/traces?limit=10"
        ) as response:
            listing = json.loads(response.read())
        assert listing["stats"]["seen"] >= 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/debug/traces/deadbeef")
        assert excinfo.value.code == 404

    def test_debug_endpoints_404_when_unwired(self, ingested_system):
        with DashboardServer(ingested_system.dashboard) as server:
            for path in ("/debug/traces", "/debug/slo"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(server.url + path)
                assert excinfo.value.code == 404
