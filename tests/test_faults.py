"""The fault-injection harness's own contract.

A deterministic harness is only as good as its determinism: these
tests pin the injection-point classification, the per-spec trigger
arithmetic, the seed-replayability of every random draw, and — most
importantly for the benchmarks — that an absent plan is a strict
no-op passthrough.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage.disk import InMemoryDisk
from repro.testing import (
    CrashPoint,
    FaultPlan,
    FaultSpec,
    FaultyPageStore,
    FaultyReplicationFeed,
    InjectedFault,
    classify_page_op,
)


def _disk() -> InMemoryDisk:
    return InMemoryDisk(read_latency=0, write_latency=0)


class TestClassification:
    @pytest.mark.parametrize(
        ("op", "page_id", "expected"),
        [
            ("write", "wal/intent", "wal.append"),
            ("delete", "wal/intent", "checkpoint"),  # commit point
            ("write", "wal/checkpoint", "checkpoint"),
            ("write", "wal/undo/00000001/000000", "wal.undo"),
            ("write", "warehouse/heap/00000042", "warehouse.write"),
            ("write", "warehouse/hash/0007", "warehouse.index"),
            ("write", "warehouse/grid/12/34", "warehouse.index"),
            ("write", "cubes/D2021-01-01", "index.put"),
            ("write", "cubes/W2021-W03", "rollup"),
            ("write", "cubes/M2021-01", "rollup"),
            ("write", "cubes/Y2021", "rollup"),
            ("write", "meta/daily_cursor", "cursor"),
        ],
    )
    def test_named_points_from_page_ids(self, op, page_id, expected):
        points = classify_page_op(op, page_id)
        assert expected in points
        assert f"store.{op}" in points

    def test_reads_only_classify_as_store_read(self):
        assert classify_page_op("read", "cubes/D2021-01-01") == ("store.read",)


class TestSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="injection point"):
            FaultSpec(point="nonsense")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(point="rollup", kind="explode")

    def test_unknown_when_rejected(self):
        with pytest.raises(ValueError, match="before"):
            FaultSpec(point="rollup", when="during")


class TestTriggerArithmetic:
    def test_after_skips_matches(self):
        plan = FaultPlan.single("store.write", kind="error", after=2)
        store = FaultyPageStore(_disk(), plan)
        store.write("a", b"1")
        store.write("b", b"2")
        with pytest.raises(InjectedFault):
            store.write("c", b"3")

    def test_count_bounds_firings(self):
        plan = FaultPlan(specs=[FaultSpec(point="store.write", kind="error", count=2)])
        store = FaultyPageStore(_disk(), plan)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                store.write("a", b"1")
        store.write("a", b"1")  # spec exhausted
        assert len(plan.fired) == 2

    def test_page_prefix_narrows_the_target(self):
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="store.write", kind="error", page_prefix="warehouse/"
                )
            ]
        )
        store = FaultyPageStore(_disk(), plan)
        store.write("cubes/D2021-01-01", b"fine")
        with pytest.raises(InjectedFault):
            store.write("warehouse/heap/00000000", b"boom")


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a, b = FaultPlan(seed=42), FaultPlan(seed=42)
        assert [a.torn_length(100) for _ in range(5)] == [
            b.torn_length(100) for _ in range(5)
        ]
        assert a.corrupt_bytes(b"payload") == b.corrupt_bytes(b"payload")

    def test_different_seed_diverges(self):
        draws_a = [FaultPlan(seed=1).torn_length(10_000) for _ in range(3)]
        draws_b = [FaultPlan(seed=2).torn_length(10_000) for _ in range(3)]
        assert draws_a != draws_b

    def test_randomized_plans_replay_from_seed(self):
        assert FaultPlan.randomized(7).specs == FaultPlan.randomized(7).specs

    def test_corrupt_flip_is_a_single_byte(self):
        corrupted = FaultPlan(seed=3).corrupt_bytes(b"abcdef")
        assert len(corrupted) == 6
        assert sum(x != y for x, y in zip(corrupted, b"abcdef")) == 1


class TestFaultyPageStore:
    def test_no_plan_is_pure_passthrough(self):
        disk = _disk()
        store = FaultyPageStore(disk)
        store.write("cubes/D2021-01-01", b"x")
        assert store.read("cubes/D2021-01-01") == b"x"
        assert "cubes/D2021-01-01" in store
        store.delete("cubes/D2021-01-01")
        assert "cubes/D2021-01-01" not in disk
        # Stats remain the inner store's single source of truth.
        assert store.stats is disk.stats

    def test_error_is_a_typed_storage_error(self):
        store = FaultyPageStore(_disk(), FaultPlan.single("store.read", kind="error"))
        store.inner.write("a", b"1")
        with pytest.raises(StorageError):
            store.read("a")

    def test_crash_before_leaves_page_unwritten(self):
        disk = _disk()
        store = FaultyPageStore(disk, FaultPlan.single("index.put", kind="crash"))
        with pytest.raises(CrashPoint):
            store.write("cubes/D2021-01-01", b"cube")
        assert "cubes/D2021-01-01" not in disk

    def test_crash_after_leaves_page_written(self):
        disk = _disk()
        plan = FaultPlan.single("index.put", kind="crash", when="after")
        store = FaultyPageStore(disk, plan)
        with pytest.raises(CrashPoint):
            store.write("cubes/D2021-01-01", b"cube")
        assert disk.read("cubes/D2021-01-01") == b"cube"

    def test_crash_is_not_an_exception(self):
        """`except Exception` recovery code must not swallow a kill."""
        store = FaultyPageStore(_disk(), FaultPlan.single("store.write"))
        with pytest.raises(CrashPoint):
            try:
                store.write("a", b"1")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("CrashPoint was caught by `except Exception`")

    def test_torn_write_persists_a_strict_prefix(self):
        disk = _disk()
        plan = FaultPlan.single("store.write", kind="torn", seed=5)
        store = FaultyPageStore(disk, plan)
        data = bytes(range(200))
        with pytest.raises(CrashPoint):
            store.write("warehouse/heap/00000000", data)
        landed = disk.read("warehouse/heap/00000000")
        assert len(landed) < len(data)
        assert data.startswith(landed)

    def test_corrupt_read_flips_without_touching_disk(self):
        disk = _disk()
        disk.write("cubes/D2021-01-01", b"cube-bytes")
        plan = FaultPlan.single("store.read", kind="corrupt", seed=9)
        store = FaultyPageStore(disk, plan)
        assert store.read("cubes/D2021-01-01") != b"cube-bytes"
        assert disk.read("cubes/D2021-01-01") == b"cube-bytes"

    def test_delay_charges_the_virtual_clock(self):
        disk = _disk()
        slept: list[float] = []
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="store.read", kind="delay", delay_seconds=0.25
                )
            ],
            sleep=slept.append,
        )
        store = FaultyPageStore(disk, plan)
        disk.write("a", b"1")
        before = disk.stats.simulated_seconds
        assert store.read("a") == b"1"
        assert disk.stats.simulated_seconds == pytest.approx(before + 0.25)
        assert slept == [0.25]

    def test_fired_log_records_the_injection(self):
        plan = FaultPlan.single("index.put", kind="error")
        store = FaultyPageStore(_disk(), plan)
        with pytest.raises(InjectedFault):
            store.write("cubes/D2021-01-01", b"x")
        assert len(plan.fired) == 1
        fired = plan.fired[0]
        assert (fired.point, fired.op, fired.target) == (
            "index.put",
            "write",
            "cubes/D2021-01-01",
        )


class TestFaultyReplicationFeed:
    @pytest.fixture()
    def feed(self, tmp_path):
        from datetime import datetime, timezone

        from repro.osm.replication import ReplicationFeed
        from repro.osm.xml_io import OsmChange

        feed = ReplicationFeed(tmp_path, "day")
        for day in (1, 2):
            feed.publish(
                OsmChange(), datetime(2021, 1, day, tzinfo=timezone.utc)
            )
        return feed

    def test_no_plan_is_passthrough(self, feed):
        faulty = FaultyReplicationFeed(feed)
        assert faulty.current_sequence() == feed.current_sequence()
        assert faulty.granularity == "day"
        assert len(list(faulty.iter_since(None))) == 2

    def test_fetch_error_is_injected(self, feed):
        faulty = FaultyReplicationFeed(
            feed, FaultPlan.single("feed.fetch", kind="error")
        )
        with pytest.raises(InjectedFault):
            faulty.fetch(0)
        faulty.fetch(0)  # spec exhausted; upstream works again

    def test_state_crash_is_injected(self, feed):
        faulty = FaultyReplicationFeed(
            feed, FaultPlan.single("feed.state", kind="crash")
        )
        with pytest.raises(CrashPoint):
            faulty.current_sequence()

    def test_stale_state_freezes_current_sequence(self, feed):
        from datetime import datetime, timezone

        from repro.osm.xml_io import OsmChange

        plan = FaultPlan(
            specs=[FaultSpec(point="feed.state", kind="stale", count=10)]
        )
        faulty = FaultyReplicationFeed(feed, plan)
        first = faulty.current_sequence()
        feed.publish(OsmChange(), datetime(2021, 1, 3, tzinfo=timezone.utc))
        # Upstream advanced, but the stale state file still answers the
        # old sequence...
        assert faulty.current_sequence() == first
        # ...until the spec expires (count exhausted), when it catches up.
        plan.specs.clear()
        assert faulty.current_sequence() == first + 1
