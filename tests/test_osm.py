"""Tests for the OSM substrate: model, XML formats, changesets,
history classification, and the replication feed."""

from __future__ import annotations

import io
from datetime import datetime, timezone

import pytest

from repro.errors import ConfigError, ParseError, StorageError
from repro.geo.geometry import BBox
from repro.osm.changesets import (
    CHANGESETS_PER_FILE,
    Changeset,
    ChangesetStore,
    read_changesets,
    write_changesets,
)
from repro.osm.history import (
    classify_update,
    iter_history_updates,
    iter_version_pairs,
    write_history,
)
from repro.osm.model import (
    OSMNode,
    OSMRelation,
    OSMWay,
    RelationMember,
    is_road_element,
    road_type_of,
)
from repro.osm.replication import ReplicationFeed, sequence_path
from repro.osm.xml_io import (
    OsmChange,
    format_timestamp,
    iter_osc,
    parse_timestamp,
    read_osc,
    read_osm,
    write_osc,
    write_osm,
)

T0 = datetime(2021, 3, 5, 12, 0, tzinfo=timezone.utc)
T1 = datetime(2021, 3, 6, 9, 30, tzinfo=timezone.utc)


def node(eid=1, version=1, **kwargs):
    defaults = dict(
        id=eid, version=version, timestamp=T0, changeset=10,
        uid=5, user="alice", lat=40.0, lon=-100.0,
    )
    defaults.update(kwargs)
    return OSMNode(**defaults)


def way(eid=2, version=1, **kwargs):
    defaults = dict(
        id=eid, version=version, timestamp=T0, changeset=10,
        uid=5, user="alice", refs=(1, 3, 4),
        tags={"highway": "residential", "name": "Main St"},
    )
    defaults.update(kwargs)
    return OSMWay(**defaults)


def relation(eid=3, version=1, **kwargs):
    defaults = dict(
        id=eid, version=version, timestamp=T0, changeset=10,
        uid=5, user="alice",
        members=(RelationMember("way", 2, "outer"),),
        tags={"type": "route"},
    )
    defaults.update(kwargs)
    return OSMRelation(**defaults)


class TestModel:
    def test_kinds(self):
        assert node().kind == "node"
        assert way().kind == "way"
        assert relation().kind == "relation"

    def test_positive_id_required(self):
        with pytest.raises(ConfigError):
            node(eid=0)

    def test_positive_version_required(self):
        with pytest.raises(ConfigError):
            node(version=0)

    def test_naive_timestamp_becomes_utc(self):
        n = node(timestamp=datetime(2021, 3, 5, 12, 0))
        assert n.timestamp.tzinfo == timezone.utc

    def test_node_coordinate_validation(self):
        with pytest.raises(ConfigError):
            node(lat=95.0)
        with pytest.raises(ConfigError):
            node(lon=-190.0)

    def test_next_version_bumps(self):
        successor = way().next_version(T1, 11, tags={"highway": "service"})
        assert successor.version == 2
        assert successor.changeset == 11
        assert successor.tags == {"highway": "service"}

    def test_deleted_creates_tombstone(self):
        tombstone = way().deleted(T1, 11)
        assert not tombstone.visible
        assert tombstone.version == 2

    def test_node_moved(self):
        moved = node().moved(41.0, -101.0, T1, 11)
        assert (moved.lat, moved.lon) == (41.0, -101.0)
        assert moved.version == 2

    def test_with_tags_merges(self):
        tagged = node().with_tags(amenity="cafe")
        assert tagged.tags["amenity"] == "cafe"

    def test_relation_member_type_validated(self):
        with pytest.raises(ConfigError):
            RelationMember("building", 1)

    def test_is_road_element(self):
        assert is_road_element(way())
        assert is_road_element(relation())
        assert not is_road_element(node())
        assert is_road_element(node(tags={"highway": "bus_stop"}))

    def test_road_type_of(self):
        assert road_type_of(way()) == "residential"
        assert road_type_of(node()) == "residential"  # fallback


class TestTimestamps:
    def test_roundtrip(self):
        assert parse_timestamp(format_timestamp(T0)) == T0

    def test_bad_timestamp_raises(self):
        with pytest.raises(ParseError):
            parse_timestamp("2021-03-05 12:00:00")


class TestOsmXml:
    def test_snapshot_roundtrip(self):
        elements = [node(), way(), relation()]
        buffer = io.BytesIO()
        write_osm(buffer, elements)
        buffer.seek(0)
        assert read_osm(buffer) == elements

    def test_way_refs_preserved_in_order(self):
        buffer = io.BytesIO()
        write_osm(buffer, [way(refs=(9, 1, 5))])
        buffer.seek(0)
        assert read_osm(buffer)[0].refs == (9, 1, 5)

    def test_relation_members_preserved(self):
        members = (
            RelationMember("way", 2, "outer"),
            RelationMember("node", 1, "stop"),
        )
        buffer = io.BytesIO()
        write_osm(buffer, [relation(members=members)])
        buffer.seek(0)
        assert read_osm(buffer)[0].members == members

    def test_deleted_node_omits_coordinates(self):
        buffer = io.BytesIO()
        write_osm(buffer, [node().deleted(T1, 11)])
        text = buffer.getvalue().decode()
        assert 'visible="false"' in text
        assert "lat=" not in text

    def test_malformed_xml_raises(self):
        with pytest.raises(ParseError):
            read_osm(io.BytesIO(b"<osm><node id='1'"))

    def test_unknown_timestamp_raises(self):
        xml = b'<osm><node id="1" timestamp="bogus" lat="0" lon="0"/></osm>'
        with pytest.raises(ParseError):
            read_osm(io.BytesIO(xml))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "snapshot.osm"
        write_osm(path, [node(), way()])
        assert read_osm(path) == [node(), way()]


class TestOsmChange:
    def test_roundtrip_all_blocks(self):
        change = OsmChange(create=[node()], modify=[way(version=2)], delete=[relation(version=2, visible=False)])
        buffer = io.BytesIO()
        write_osc(buffer, change)
        buffer.seek(0)
        restored = read_osc(buffer)
        assert restored.create == change.create
        assert restored.modify == change.modify
        assert restored.delete == change.delete

    def test_actions_order(self):
        change = OsmChange(create=[node()], modify=[way()], delete=[relation()])
        actions = [action for action, _ in change.actions()]
        assert actions == ["create", "modify", "delete"]
        assert len(change) == 3

    def test_iter_osc_streams_actions(self):
        change = OsmChange(create=[node(), way()], delete=[relation()])
        buffer = io.BytesIO()
        write_osc(buffer, change)
        buffer.seek(0)
        pairs = list(iter_osc(buffer))
        assert [(a, e.kind) for a, e in pairs] == [
            ("create", "node"),
            ("create", "way"),
            ("delete", "relation"),
        ]

    def test_element_outside_block_raises(self):
        xml = (
            b'<osmChange version="0.6">'
            b'<node id="1" timestamp="2021-03-05T12:00:00Z" lat="0" lon="0"/>'
            b"</osmChange>"
        )
        with pytest.raises(ParseError, match="outside"):
            list(iter_osc(io.BytesIO(xml)))

    def test_extend(self):
        a = OsmChange(create=[node()])
        b = OsmChange(delete=[way()])
        a.extend(b)
        assert len(a) == 2


class TestChangesets:
    def make(self, cid=10, with_bbox=True):
        return Changeset(
            id=cid,
            created_at=T0,
            closed_at=T1,
            uid=5,
            user="alice",
            bbox=BBox(-101, 39, -99, 41) if with_bbox else None,
            tags={"comment": "survey", "source": "gps"},
            changes_count=3,
        )

    def test_xml_roundtrip(self):
        buffer = io.BytesIO()
        write_changesets(buffer, [self.make()])
        buffer.seek(0)
        restored = list(read_changesets(buffer))[0]
        assert restored == self.make()
        assert restored.comment == "survey"
        assert restored.source == "gps"

    def test_roundtrip_without_bbox(self):
        buffer = io.BytesIO()
        write_changesets(buffer, [self.make(with_bbox=False)])
        buffer.seek(0)
        assert list(read_changesets(buffer))[0].bbox is None

    def test_store_blocks_by_thousand(self, tmp_path):
        store = ChangesetStore(tmp_path)
        store.add(self.make(cid=5))
        store.add(self.make(cid=999))
        store.add(self.make(cid=1000))
        assert store.flush() == 2
        assert store.file_count() == 2

    def test_store_lookup(self, tmp_path):
        store = ChangesetStore(tmp_path)
        store.add(self.make(cid=42))
        store.flush()
        assert store.lookup(42).id == 42
        assert store.lookup(41) is None

    def test_pending_lookup_before_flush(self, tmp_path):
        store = ChangesetStore(tmp_path)
        store.add(self.make(cid=7))
        assert store.lookup(7) is not None

    def test_flush_merges_block_files(self, tmp_path):
        store = ChangesetStore(tmp_path)
        store.add(self.make(cid=1))
        store.flush()
        store.add(self.make(cid=2))
        store.flush()
        fresh = ChangesetStore(tmp_path)
        assert fresh.lookup(1) is not None
        assert fresh.lookup(2) is not None

    def test_iteration_sorted(self, tmp_path):
        store = ChangesetStore(tmp_path)
        for cid in (1500, 3, 999):
            store.add(self.make(cid=cid))
        store.flush()
        assert [c.id for c in store] == [3, 999, 1500]

    def test_constant(self):
        assert CHANGESETS_PER_FILE == 1000


class TestHistoryClassification:
    def test_first_version_is_create(self):
        assert classify_update(None, node()) == "create"

    def test_truncated_history_first_seen_is_geometry(self):
        assert classify_update(None, node(version=4)) == "geometry"

    def test_tombstone_is_delete(self):
        previous = way()
        assert classify_update(previous, previous.deleted(T1, 11)) == "delete"

    def test_node_move_is_geometry(self):
        previous = node()
        assert classify_update(previous, previous.moved(41, -100, T1, 11)) == "geometry"

    def test_way_refs_change_is_geometry(self):
        previous = way()
        current = previous.with_refs((1, 3, 4, 9), T1, 11)
        assert classify_update(previous, current) == "geometry"

    def test_relation_members_change_is_geometry(self):
        previous = relation()
        current = previous.with_members(
            (RelationMember("way", 2, "outer"), RelationMember("way", 5, "")),
            T1,
            11,
        )
        assert classify_update(previous, current) == "geometry"

    def test_tag_change_is_metadata(self):
        previous = way()
        current = previous.next_version(T1, 11, tags={"highway": "service"})
        assert classify_update(previous, current) == "metadata"

    def test_geometry_wins_over_metadata(self):
        previous = node()
        current = previous.next_version(
            T1, 11, lat=41.0, tags={"amenity": "cafe"}
        )
        assert classify_update(previous, current) == "geometry"

    def test_mismatched_pair_rejected(self):
        with pytest.raises(ParseError):
            classify_update(node(eid=1), node(eid=2, version=2))


class TestVersionPairs:
    def test_pairs_group_by_element(self):
        n1, n2 = node(), node(version=2, timestamp=T1)
        w1 = way()
        pairs = list(iter_version_pairs([n1, n2, w1]))
        assert pairs == [(None, n1), (n1, n2), (None, w1)]

    def test_non_increasing_version_rejected(self):
        with pytest.raises(ParseError, match="non-increasing"):
            list(iter_version_pairs([node(version=2), node(version=2)]))

    def test_unsorted_stream_rejected(self):
        with pytest.raises(ParseError, match="not sorted"):
            list(iter_version_pairs([way(), node()]))  # way before node

    def test_history_file_roundtrip(self, tmp_path):
        path = tmp_path / "history.osm"
        n1 = node()
        n2 = n1.moved(41, -100, T1, 11)
        w1 = way()
        write_history(path, [w1, n2, n1])  # writer sorts
        updates = list(iter_history_updates(path))
        assert [(u.update_type, u.element.kind) for u in updates] == [
            ("create", "node"),
            ("geometry", "node"),
            ("create", "way"),
        ]
        assert updates[1].previous == n1


class TestReplication:
    def test_sequence_path_format(self):
        assert sequence_path(0) == "000/000/000"
        assert sequence_path(1234567) == "001/234/567"

    def test_sequence_out_of_range(self):
        with pytest.raises(StorageError):
            sequence_path(-1)

    def test_publish_and_fetch(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        change = OsmChange(create=[node()])
        seq = feed.publish(change, T0)
        assert seq == 0
        assert feed.current_sequence() == 0
        fetched = feed.fetch(0)
        assert fetched.create == [node()]

    def test_sequences_increment(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        assert feed.publish(OsmChange(), T0) == 0
        assert feed.publish(OsmChange(), T1) == 1

    def test_state_carries_timestamp(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        feed.publish(OsmChange(), T0)
        seq, stamp = feed.state(0)
        assert (seq, stamp) == (0, T0.replace(second=0, microsecond=0))

    def test_iter_since(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        for stamp in (T0, T1):
            feed.publish(OsmChange(create=[node()]), stamp)
        replayed = list(feed.iter_since(None))
        assert [s for s, _, _ in replayed] == [0, 1]
        assert list(feed.iter_since(0))[0][0] == 1
        assert list(feed.iter_since(1)) == []

    def test_empty_feed(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        assert feed.current_sequence() is None
        assert list(feed.iter_since(None)) == []

    def test_fetch_missing_raises(self, tmp_path):
        feed = ReplicationFeed(tmp_path, "day")
        with pytest.raises(StorageError):
            feed.fetch(3)

    def test_bad_granularity_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            ReplicationFeed(tmp_path, "weekly")

    def test_granularities_are_separate(self, tmp_path):
        day = ReplicationFeed(tmp_path, "day")
        hour = ReplicationFeed(tmp_path, "hour")
        day.publish(OsmChange(), T0)
        assert hour.current_sequence() is None
