"""Placement properties of the rendezvous shard router.

Consistent placement is what makes sharding operable: every cube maps
to exactly one shard, the mapping survives process restarts (and is
independent of ``PYTHONHASHSEED``, which is why the router hashes
with BLAKE2b and never the builtin ``hash()``), and growing or
shrinking the shard set by one relocates only ~K/N of K cubes —
the property that lets a resize re-warm a fraction of the cache
instead of all of it.
"""

from __future__ import annotations

import os
import subprocess
import sys
from datetime import date, timedelta
from pathlib import Path

import pytest

from repro.core.calendar import (
    Level,
    day_key,
    month_key,
    week_key,
    year_key,
)
from repro.core.dimensions import default_schema
from repro.core.hierarchy import HierarchicalIndex
from repro.core.shard import ShardRouter, ShardedIndex, shard_stores_for
from repro.errors import ConfigError
from repro.storage.disk import DirectoryDisk, InMemoryDisk


def _catalog_keys(years=(2019, 2020, 2021)):
    """A realistic key population: every level over several years."""
    keys = []
    for year in years:
        keys.append(year_key(year))
        for month in range(1, 13):
            keys.append(month_key(year, month))
            for index in range(4):
                keys.append(week_key(year, month, index))
        day = date(year, 1, 1)
        while day.year == year:
            keys.append(day_key(day))
            day += timedelta(days=7)
    return keys


def test_every_key_maps_to_exactly_one_shard():
    keys = _catalog_keys()
    for shards in (1, 2, 3, 4, 8, 16):
        router = ShardRouter(shards)
        for key in keys:
            shard = router.shard_for(key)
            assert 0 <= shard < shards
            # Exactly one: the winner recomputed from raw weights.
            weights = [router.weight(i, str(key)) for i in range(shards)]
            assert weights.index(max(weights)) == shard


def test_placement_deterministic_across_router_instances():
    keys = _catalog_keys()
    first = ShardRouter(8)
    second = ShardRouter(8)  # a "restarted" process
    assert [first.shard_for(k) for k in keys] == [
        second.shard_for(k) for k in keys
    ]


def test_placement_independent_of_pythonhashseed():
    """The mapping must be identical in processes with different seeds.

    This is the property builtin ``hash()`` would break: a serving
    pool forks workers whose ``PYTHONHASHSEED`` may differ from the
    parent's, and every worker must agree where each cube lives.
    """
    script = (
        "from repro.core.shard import ShardRouter\n"
        "from repro.core.calendar import day_key\n"
        "from datetime import date, timedelta\n"
        "r = ShardRouter(5)\n"
        "day = date(2021, 1, 1)\n"
        "out = []\n"
        "for _ in range(60):\n"
        "    out.append(r.shard_for(day_key(day)))\n"
        "    day += timedelta(days=3)\n"
        "print(','.join(map(str, out)))\n"
    )
    src = str(Path(__file__).resolve().parent.parent / "src")
    outputs = set()
    for seed in ("0", "1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1


@pytest.mark.parametrize("shards", (2, 4, 8))
def test_adding_one_shard_relocates_about_one_nth(shards):
    """Seeded sweep: N -> N+1 moves ~K/(N+1) keys, never a reshuffle."""
    keys = _catalog_keys()
    k = len(keys)
    before = ShardRouter(shards)
    after = ShardRouter(shards + 1)
    moved = sum(
        1 for key in keys if before.shard_for(key) != after.shard_for(key)
    )
    expected = k / (shards + 1)
    # Rendezvous hashing moves exactly the keys whose winner became the
    # new shard — binomially distributed around K/(N+1).  The 1.8x
    # ceiling is far inside "consistent" territory (a mod-N hash moves
    # ~K*(N/(N+1)) keys, e.g. ~80% at N=4) while loose enough to never
    # flake on this fixed seed population.
    assert moved <= 1.8 * expected, (moved, expected)
    # And every moved key moved TO the new shard, nowhere else.
    for key in keys:
        if before.shard_for(key) != after.shard_for(key):
            assert after.shard_for(key) == shards


@pytest.mark.parametrize("shards", (3, 5, 9))
def test_removing_one_shard_relocates_only_its_keys(shards):
    keys = _catalog_keys()
    before = ShardRouter(shards)
    after = ShardRouter(shards - 1)
    for key in keys:
        src = before.shard_for(key)
        dst = after.shard_for(key)
        if src < shards - 1:
            # Keys not on the removed shard must not move at all.
            assert dst == src
        else:
            assert 0 <= dst < shards - 1


def test_balance_is_reasonable():
    """Rendezvous spread: no shard hoards the catalog."""
    keys = _catalog_keys()
    router = ShardRouter(4)
    counts = [0, 0, 0, 0]
    for key in keys:
        counts[router.shard_for(key)] += 1
    expected = len(keys) / 4
    for count in counts:
        assert 0.6 * expected <= count <= 1.4 * expected, counts


def test_router_rejects_zero_shards():
    with pytest.raises(ConfigError):
        ShardRouter(0)
    with pytest.raises(ConfigError):
        shard_stores_for(InMemoryDisk(), 0)


def test_sharded_index_placement_survives_directory_reopen(tmp_path):
    """On-disk shards reopen with every cube where placement put it."""
    schema = default_schema(("united_states", "germany", "qatar"), road_types=4)
    primary = DirectoryDisk(tmp_path / "pages")

    stores = shard_stores_for(primary, 3)
    index = ShardedIndex(schema, stores, meta_store=primary)
    from repro.synth.scale import scaled_day_updates
    import random

    rng = random.Random(3)
    updates = {}
    day = date(2021, 6, 1)
    while day <= date(2021, 7, 31):
        updates[day] = scaled_day_updates(day, rng, schema, 5)
        day += timedelta(days=1)
    index.bulk_load(updates)
    written = {level: index.keys(level) for level in index.levels}
    placement = {
        str(key): index.shard_for(key)
        for level in index.levels
        for key in written[level]
    }

    # "Restart": brand-new stores and index over the same directories.
    reopened_primary = DirectoryDisk(tmp_path / "pages")
    reopened_stores = shard_stores_for(reopened_primary, 3)
    reopened = ShardedIndex(schema, reopened_stores, meta_store=reopened_primary)
    for level in index.levels:
        assert reopened.keys(level) == written[level]
    for name, shard in placement.items():
        key_obj = next(
            k
            for level in reopened.levels
            for k in reopened.keys(level)
            if str(k) == name
        )
        assert reopened.shard_for(key_obj) == shard
        # The cube is actually readable from that shard's store.
        assert reopened.shard_index(shard).has(key_obj)
    # Shard directories are siblings of pages/, inside the deployment.
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "pages",
        "pages-shard0",
        "pages-shard1",
        "pages-shard2",
    ]


def test_shard_stores_reject_mismatched_router():
    schema = default_schema(("united_states",), road_types=2)
    stores = shard_stores_for(InMemoryDisk(), 2)
    with pytest.raises(ConfigError):
        ShardedIndex(schema, stores, router=ShardRouter(3))


def test_sharded_matches_unsharded_pages_for_same_load(tmp_path):
    """Placement partitions the page population exactly (no dup, no loss)."""
    schema = default_schema(("united_states", "germany"), road_types=4)
    from repro.synth.scale import scaled_day_updates
    import random

    rng = random.Random(9)
    updates = {}
    day = date(2021, 1, 1)
    while day <= date(2021, 2, 28):
        updates[day] = scaled_day_updates(day, rng, schema, 4)
        day += timedelta(days=1)

    flat = HierarchicalIndex(schema, InMemoryDisk())
    flat.bulk_load(dict(updates))

    stores = shard_stores_for(InMemoryDisk(), 4)
    sharded = ShardedIndex(schema, stores)
    sharded.bulk_load(updates)

    flat_pages = set(flat.store.list_pages("cubes/"))
    shard_pages = [set(store.list_pages("cubes/")) for store in stores]
    union = set().union(*shard_pages)
    assert union == flat_pages
    for i in range(4):
        for j in range(i + 1, 4):
            assert not (shard_pages[i] & shard_pages[j])
