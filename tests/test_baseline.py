"""Tests for the DBMS baseline, SQL rendering, and the Fig. 9 variants."""

from __future__ import annotations

from datetime import date

import pytest

from repro.baseline.flat import make_rased, make_rased_f, make_rased_o
from repro.baseline.rowstore import BufferPool, RowStoreDatabase
from repro.baseline.sqlgen import to_sql
from repro.core.calendar import Level
from repro.core.query import AnalysisQuery
from repro.errors import ConfigError
from repro.storage.disk import InMemoryDisk
from tests.conftest import INGESTED_END, INGESTED_START


@pytest.fixture(scope="module")
def rowstore(ingested_system):
    """A row-store database over the ingested system's warehouse heap."""
    return RowStoreDatabase(
        ingested_system.store,
        ingested_system.atlas,
        buffer_pages=8,
        network_sizes=ingested_system.network_sizes,
    )


class TestBufferPool:
    def test_hit_avoids_disk_read(self):
        disk = InMemoryDisk(read_latency=0.001)
        disk.write("p", b"data")
        pool = BufferPool(disk, capacity_pages=4)
        pool.read("p")
        reads_after_miss = disk.stats.reads
        pool.read("p")
        assert disk.stats.reads == reads_after_miss  # served from pool
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction(self):
        disk = InMemoryDisk(read_latency=0)
        for name in "abc":
            disk.write(name, name.encode())
        pool = BufferPool(disk, capacity_pages=2)
        pool.read("a")
        pool.read("b")
        pool.read("c")  # evicts a
        disk.reset_stats()
        pool.read("a")
        assert disk.stats.reads == 1

    def test_zero_capacity_never_caches(self):
        disk = InMemoryDisk(read_latency=0)
        disk.write("p", b"x")
        pool = BufferPool(disk, capacity_pages=0)
        pool.read("p")
        pool.read("p")
        assert pool.misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            BufferPool(InMemoryDisk(), capacity_pages=-1)

    def test_clear(self):
        disk = InMemoryDisk(read_latency=0)
        disk.write("p", b"x")
        pool = BufferPool(disk, capacity_pages=2)
        pool.read("p")
        pool.clear()
        pool.read("p")
        assert pool.misses == 1


class TestRowStoreEquivalence:
    """The scan-based executor must agree with the cube executor on
    country-level queries (zone overlap aside)."""

    @pytest.mark.parametrize(
        "query_kwargs",
        [
            dict(group_by=("element_type",)),
            dict(group_by=("country", "element_type"), countries=("germany", "france")),
            dict(group_by=("update_type",), element_types=("way",)),
            dict(group_by=("road_type",), countries=("india",)),
            dict(),
        ],
        ids=["by-element", "two-countries", "way-updates", "india-roads", "total"],
    )
    def test_matches_cube_executor(self, ingested_system, rowstore, query_kwargs):
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END, **query_kwargs)
        cube_rows = ingested_system.dashboard.analysis(query).rows
        scan_rows = rowstore.execute(query).rows
        if "road_type" in query.group_by:
            # The heap stores raw highway values; fold them like the cube.
            schema = ingested_system.schema
            folded: dict = {}
            position = query.group_by.index("road_type")
            for key, value in scan_rows.items():
                parts = list(key)
                if parts[position] not in schema.road_type:
                    parts[position] = "other"
                folded[tuple(parts)] = folded.get(tuple(parts), 0) + value
            scan_rows = folded
        assert scan_rows == cube_rows

    def test_date_window_filter(self, ingested_system, rowstore):
        query = AnalysisQuery(
            start=date(2021, 1, 10), end=date(2021, 1, 20), group_by=("element_type",)
        )
        assert (
            rowstore.execute(query).rows
            == ingested_system.dashboard.analysis(query).rows
        )

    def test_continent_filter_expands_to_countries(self, ingested_system, rowstore):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("oceania",),
        )
        scan = rowstore.execute(query).rows[()]
        cube = ingested_system.dashboard.analysis(
            AnalysisQuery(start=INGESTED_START, end=INGESTED_END, countries=("oceania",))
        ).rows[()]
        assert scan == cube

    def test_state_filter_uses_point_in_state(self, ingested_system, rowstore):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("minnesota",),
        )
        scan = rowstore.execute(query).rows.get((), 0)
        cube = ingested_system.dashboard.analysis(query).rows.get((), 0)
        assert scan == cube

    def test_time_series_grouping(self, ingested_system, rowstore):
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 1, 31),
            countries=("germany",),
            group_by=("date",),
            date_granularity=Level.WEEK,
        )
        scan = rowstore.execute(query).rows
        cube = ingested_system.dashboard.analysis(query).rows
        # The cube keeps zero periods in pure date series; drop them.
        assert {k: v for k, v in cube.items() if v} == scan

    def test_percentage_metric(self, ingested_system, rowstore):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("germany",),
            group_by=("country",),
            metric="percentage",
        )
        assert rowstore.execute(query).rows == pytest.approx(
            ingested_system.dashboard.analysis(query).rows
        )


class TestRowStoreCosts:
    def test_always_scans_every_heap_page(self, ingested_system, rowstore):
        heap_pages = rowstore.heap.page_count
        short = AnalysisQuery(start=date(2021, 2, 27), end=date(2021, 2, 28))
        long = AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        rowstore.pool.clear()
        stats_short = rowstore.execute(short).stats
        rowstore.pool.clear()
        stats_long = rowstore.execute(long).stats
        assert stats_short.disk_reads == heap_pages
        assert stats_long.disk_reads == heap_pages

    def test_rased_is_orders_faster_on_simulated_time(
        self, ingested_system, rowstore
    ):
        query = AnalysisQuery(start=date(2021, 2, 26), end=date(2021, 2, 28))
        rowstore.pool.clear()
        scan_stats = rowstore.execute(query).stats
        ingested_system.warm_cache()
        cube_stats = ingested_system.dashboard.analysis(query).stats
        assert cube_stats.simulated_seconds < scan_stats.simulated_seconds


class TestSqlGen:
    def test_example_1_country_analysis(self):
        """Paper Example 1: Fig. 2/3's query."""
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 12, 31),
            update_types=("create", "geometry"),
            group_by=("country", "element_type"),
        )
        sql = to_sql(query)
        assert "SELECT U.Country, U.ElementType, COUNT(*)" in sql
        assert "U.Date BETWEEN 2021-01-01 AND 2021-12-31" in sql
        assert "U.UpdateType IN [New, Update]" in sql
        assert "GROUP BY U.Country, U.ElementType" in sql

    def test_example_2_road_type_analysis(self):
        query = AnalysisQuery(
            start=date(2018, 1, 1),
            end=date(2021, 12, 31),
            countries=("united_states",),
            update_types=("create", "geometry"),
            group_by=("road_type", "element_type"),
        )
        sql = to_sql(query)
        assert "SELECT U.RoadType, U.ElementType, COUNT(*)" in sql
        assert "U.Country = UnitedStates" in sql

    def test_example_3_percentage_time_series(self):
        query = AnalysisQuery(
            start=date(2020, 1, 1),
            end=date(2021, 12, 31),
            countries=("germany", "singapore", "qatar"),
            group_by=("country", "date"),
            metric="percentage",
        )
        sql = to_sql(query)
        assert "Percentage(*)" in sql
        assert "U.Country IN [Germany, Singapore, Qatar]" in sql
        assert "GROUP BY U.Country, U.Date" in sql

    def test_no_group_by_renders_plain_count(self):
        query = AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 1, 2))
        sql = to_sql(query)
        assert sql.startswith("SELECT COUNT(*)")
        assert "GROUP BY" not in sql


class TestSystemVariants:
    """Fig. 9's ordering: RASED <= RASED-O <= RASED-F on disk reads."""

    def test_variant_disk_read_ordering(self, ingested_system):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("germany",),
        )
        flat = make_rased_f(ingested_system.index)
        opt = make_rased_o(ingested_system.index)
        full = make_rased(ingested_system.index, cache_slots=16)
        ingested_system.store.reset_stats()

        flat_stats = flat.execute(query).stats
        opt_stats = opt.execute(query).stats
        full_stats = full.execute(query).stats
        assert full_stats.disk_reads <= opt_stats.disk_reads <= flat_stats.disk_reads
        assert flat_stats.disk_reads == 59  # one per day

    def test_variants_agree_on_answers(self, ingested_system):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            group_by=("country", "element_type"),
        )
        flat_rows = make_rased_f(ingested_system.index).execute(query).rows
        opt_rows = make_rased_o(ingested_system.index).execute(query).rows
        full_rows = make_rased(ingested_system.index, cache_slots=16).execute(query).rows
        assert flat_rows == opt_rows == full_rows

    def test_full_variant_simulated_time_is_best(self, ingested_system):
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        flat = make_rased_f(ingested_system.index).execute(query).stats
        full = make_rased(ingested_system.index, cache_slots=16).execute(query).stats
        assert full.simulated_seconds < flat.simulated_seconds
