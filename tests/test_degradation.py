"""Graceful degradation, end to end: quarantine → partial=true → heal.

The ISSUE contract: a corrupt or missing cube page must not take the
dashboard down.  The executor answers what it can with an explicit
``partial=true`` flag, the bad cube is quarantined (visible on
``/health`` and the metrics registry), and rewriting the cube heals it
back into service — including through the HTTP surface and around the
result cache (a partial answer must never be memoized as if complete).
"""

from __future__ import annotations

import json
import urllib.request
from datetime import date, timedelta

import pytest

from repro.core.calendar import day_key
from repro.core.hierarchy import page_id_for
from repro.core.query import AnalysisQuery
from repro.dashboard.server import DashboardServer
from repro.storage.disk import InMemoryDisk
from repro.storage.serializer import deserialize_cube
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig
from repro.testing import FaultPlan, FaultyPageStore

START = date(2021, 1, 1)
END = date(2021, 1, 4)
VICTIM = date(2021, 1, 2)

_QUERY = AnalysisQuery(start=START, end=END)


def _build(atlas, store=None, **config_kw) -> RasedSystem:
    system = RasedSystem.create(
        atlas=atlas,
        store=store or InMemoryDisk(read_latency=0, write_latency=0),
        config=SystemConfig(
            road_types=8,
            cache_slots=0,
            simulation=SimulationConfig(
                seed=23,
                mapper_count=6,
                base_sessions_per_day=2,
                nodes_per_country=2,
            ),
            **config_kw,
        ),
    )
    system.simulate_and_ingest(START, END)
    return system


@pytest.fixture(scope="module")
def clean_totals(atlas) -> tuple[int, int]:
    """(window total, victim-day total) from an unbroken deployment."""
    dashboard = _build(atlas).dashboard
    return (
        dashboard.analysis(_QUERY).total,
        dashboard.analysis(AnalysisQuery(start=VICTIM, end=VICTIM)).total,
    )


class TestPartialAnswers:
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_missing_page_yields_partial_not_crash(
        self, atlas, clean_totals, parallelism
    ):
        """Both fetch paths (serial loop and the I/O scheduler) degrade
        the same way: answer minus the lost day, flagged partial."""
        full_total, victim_total = clean_totals
        system = _build(atlas, fetch_parallelism=parallelism)
        system.store.delete(page_id_for(day_key(VICTIM)))

        result = system.dashboard.analysis(_QUERY)
        assert result.stats.partial is True
        assert result.stats.quarantined_cubes == 1
        assert result.total == full_total - victim_total
        assert system.index.quarantined_count() == 1

    def test_corrupt_read_from_fault_plan_quarantines(self, atlas, clean_totals):
        """An injected bit-flip on a cube read ends in quarantine, not
        a crashed query — the paper's dashboard stays up."""
        full_total, _ = clean_totals
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        faulty = FaultyPageStore(disk)
        system = _build(atlas, store=faulty)
        faulty.plan = FaultPlan.single(
            "store.read",
            kind="corrupt",
            seed=3,
            page_prefix=f"cubes/{day_key(VICTIM)}",
        )
        result = system.dashboard.analysis(_QUERY)
        assert result.stats.partial is True
        assert result.total < full_total
        assert day_key(VICTIM) in system.index.quarantined_keys()

    def test_metrics_count_partial_answers(self, atlas):
        system = _build(atlas)
        system.store.delete(page_id_for(day_key(VICTIM)))
        system.dashboard.analysis(_QUERY)
        counters = system.metrics.snapshot()["counters"]
        assert counters["rased_queries_partial_total"][0]["value"] == 1
        assert counters["rased_query_quarantined_cubes_total"][0]["value"] == 1

    def test_heal_by_rewriting_the_cube(self, atlas, clean_totals):
        full_total, _ = clean_totals
        system = _build(atlas)
        victim_page = page_id_for(day_key(VICTIM))
        good_bytes = system.store.read(victim_page)
        system.store.delete(victim_page)
        assert system.dashboard.analysis(_QUERY).stats.partial is True

        system.index.put(deserialize_cube(good_bytes, system.schema))
        healed = system.dashboard.analysis(_QUERY)
        assert healed.stats.partial is False
        assert healed.total == full_total
        assert system.index.quarantined_count() == 0


class TestResultCacheInteraction:
    def test_partial_answers_are_never_memoized(self, atlas, clean_totals):
        """A memoized partial answer would keep serving the hole after
        the heal; the executor must skip the result cache for them."""
        full_total, _ = clean_totals
        system = _build(atlas, result_cache_slots=8)
        victim_page = page_id_for(day_key(VICTIM))
        good_bytes = system.store.read(victim_page)
        system.store.delete(victim_page)

        first = system.dashboard.analysis(_QUERY)
        second = system.dashboard.analysis(_QUERY)
        assert first.stats.partial and second.stats.partial

        system.index.put(deserialize_cube(good_bytes, system.schema))
        healed = system.dashboard.analysis(_QUERY)
        assert healed.stats.partial is False
        assert healed.total == full_total


class TestHttpSurface:
    @pytest.fixture()
    def degraded_server(self, atlas):
        system = _build(atlas)
        system.store.delete(page_id_for(day_key(VICTIM)))
        with DashboardServer(system.dashboard) as server:
            yield server, system

    def _post_analysis(self, server):
        request = urllib.request.Request(
            server.url + "/analysis",
            data=json.dumps(
                {"start": START.isoformat(), "end": END.isoformat()}
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_analysis_carries_the_partial_flag(self, degraded_server):
        server, _ = degraded_server
        status, payload = self._post_analysis(server)
        assert status == 200
        assert payload["partial"] is True
        assert payload["stats"]["quarantined_cubes"] == 1

    def test_health_reports_degraded(self, degraded_server):
        server, _ = degraded_server
        # The quarantine happens on first touch; trigger it.
        self._post_analysis(server)
        with urllib.request.urlopen(server.url + "/health") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "degraded"
        assert payload["quarantined_cubes"] == 1

    def test_prometheus_exposes_partial_counters(self, degraded_server):
        server, _ = degraded_server
        self._post_analysis(server)
        with urllib.request.urlopen(server.url + "/metrics") as response:
            text = response.read().decode("utf-8")
        assert "rased_queries_partial_total 1" in text


class TestQuarantineScope:
    def test_untouched_days_still_answer_complete(self, atlas):
        """Queries that never touch the quarantined day stay partial-free."""
        system = _build(atlas)
        system.store.delete(page_id_for(day_key(VICTIM)))
        clean = AnalysisQuery(start=END - timedelta(days=1), end=END)
        result = system.dashboard.analysis(clean)
        assert result.stats.partial is False
        assert result.stats.quarantined_cubes == 0
