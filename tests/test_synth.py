"""Tests for the synthetic world, mappers, and the edit simulator."""

from __future__ import annotations

import random
from collections import Counter
from datetime import date

import pytest

from repro.errors import SimulationError
from repro.osm.history import iter_history_updates
from repro.osm.model import OSMNode, OSMWay
from repro.synth.editors import PROFILES, Mapper, run_operation
from repro.synth.simulator import EditSimulator, SimulationConfig
from repro.synth.workload import QueryWorkload
from repro.synth.world import (
    WorldState,
    build_initial_world,
    choose_road_type,
)


def small_config(**overrides):
    defaults = dict(
        seed=3, mapper_count=20, base_sessions_per_day=5, nodes_per_country=8
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def world(atlas):
    return build_initial_world(atlas, random.Random(1), base_nodes_per_country=8)


class TestWorldConstruction:
    def test_every_country_has_a_network(self, atlas, world):
        assert set(world.networks) == {z.name for z in atlas.countries}

    def test_networks_have_nodes_and_ways(self, world):
        for network in list(world.networks.values())[::40]:
            assert len(network.node_ids) >= 6
            assert len(network.way_ids) >= 1

    def test_hot_countries_are_denser(self, world):
        usa = world.networks["united_states"]
        cold = world.networks["africa_003"]
        assert len(usa.node_ids) > len(cold.node_ids)

    def test_all_elements_version_1(self, world):
        assert all(e.version == 1 for e in world.current.values())

    def test_ways_reference_existing_nodes(self, world):
        for network in list(world.networks.values())[::40]:
            for way_id in network.way_ids:
                way = world.get("way", way_id)
                assert isinstance(way, OSMWay)
                for ref in way.refs:
                    assert isinstance(world.get("node", ref), OSMNode)

    def test_nodes_are_inside_their_country(self, atlas, world):
        for zone in atlas.countries[::40]:
            network = world.networks[zone.name]
            for node_id in network.node_ids[:5]:
                node = world.get("node", node_id)
                assert zone.bbox.contains_point(
                    type(zone.bbox.center)(lon=node.lon, lat=node.lat)
                )

    def test_road_network_size_counts_live_ways(self, world):
        name = "germany"
        before = world.road_network_size(name)
        way_id = world.networks[name].way_ids[0]
        way = world.get("way", way_id)
        world.apply(way.deleted(way.timestamp, 999))
        assert world.road_network_size(name) == before - 1

    def test_determinism(self, atlas):
        a = build_initial_world(atlas, random.Random(5), 8)
        b = build_initial_world(atlas, random.Random(5), 8)
        assert len(a.history) == len(b.history)
        assert a.history[100] == b.history[100]


class TestWorldStateBookkeeping:
    def test_version_skew_rejected(self, atlas):
        world = build_initial_world(atlas, random.Random(2), 6)
        element = next(iter(world.current.values()))
        bad = element.next_version(element.timestamp, 1).next_version(
            element.timestamp, 1
        )
        with pytest.raises(SimulationError, match="version skew"):
            world.apply(bad)

    def test_first_version_must_be_one(self, atlas):
        world = WorldState(atlas)
        from datetime import datetime, timezone

        orphan = OSMNode(
            id=99999,
            version=2,
            timestamp=datetime(2021, 1, 1, tzinfo=timezone.utc),
            changeset=1,
            lat=0,
            lon=0,
        )
        with pytest.raises(SimulationError, match="must be 1"):
            world.apply(orphan)

    def test_previous_version_lookup(self, atlas):
        world = build_initial_world(atlas, random.Random(2), 6)
        element = next(iter(world.current.values()))
        successor = element.next_version(element.timestamp, 7)
        world.apply(successor)
        assert world.previous_version(successor) == element
        assert world.previous_version(element) is None

    def test_get_missing_raises(self, atlas):
        world = WorldState(atlas)
        with pytest.raises(SimulationError):
            world.get("node", 12345)

    def test_id_allocation_monotonic(self, atlas):
        world = WorldState(atlas)
        ids = [world.allocate_id("node") for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]


class TestRoadTypeSampling:
    def test_only_known_values(self):
        rng = random.Random(4)
        values = {choose_road_type(rng) for _ in range(300)}
        from repro.core.dimensions import PAPER_ROAD_TYPES

        assert values <= set(PAPER_ROAD_TYPES)

    def test_residential_most_common(self):
        rng = random.Random(4)
        counts = Counter(choose_road_type(rng) for _ in range(3000))
        assert counts.most_common(1)[0][0] == "residential"


class TestEditOperations:
    @pytest.fixture()
    def setup(self, atlas):
        world = build_initial_world(atlas, random.Random(7), 8)
        mapper = Mapper(uid=1001, user="tester", profile=PROFILES[1], home_country="germany")
        network = world.network("germany")
        from datetime import datetime, timezone

        stamp = datetime(2021, 5, 1, 10, tzinfo=timezone.utc)
        return world, network, mapper, stamp

    @pytest.mark.parametrize(
        "op,expected_actions",
        [
            ("create_road", {"create"}),
            ("create_poi", {"create"}),
            ("move_node", {"modify"}),
            ("retag_way", {"modify"}),
            ("retag_node", {"modify"}),
            ("extend_way", {"create", "modify"}),
            ("delete_way", {"delete"}),
            ("edit_relation", {"modify"}),
        ],
    )
    def test_operations_produce_expected_actions(self, setup, op, expected_actions):
        world, network, mapper, stamp = setup
        produced = run_operation(op, world, network, random.Random(1), stamp, 500, mapper)
        assert produced
        assert {action for action, _ in produced} <= expected_actions | {"create"}

    def test_operations_apply_to_world(self, setup):
        world, network, mapper, stamp = setup
        before = len(world.history)
        produced = run_operation(
            "create_road", world, network, random.Random(1), stamp, 500, mapper
        )
        assert len(world.history) == before + len(produced)

    def test_move_node_bumps_version(self, setup):
        world, network, mapper, stamp = setup
        produced = run_operation(
            "move_node", world, network, random.Random(1), stamp, 500, mapper
        )
        _, element = produced[0]
        assert element.version >= 2
        assert world.previous_version(element) is not None

    def test_delete_way_makes_tombstone(self, setup):
        world, network, mapper, stamp = setup
        produced = run_operation(
            "delete_way", world, network, random.Random(1), stamp, 500, mapper
        )
        action, element = produced[0]
        assert action == "delete"
        assert not element.visible

    def test_unknown_operation_raises(self, setup):
        world, network, mapper, stamp = setup
        with pytest.raises(SimulationError):
            run_operation("paint", world, network, random.Random(1), stamp, 500, mapper)


class TestSimulator:
    def test_determinism(self, atlas):
        a = EditSimulator(atlas=atlas, config=small_config())
        b = EditSimulator(atlas=atlas, config=small_config())
        day_a = a.simulate_day(date(2021, 1, 1))
        day_b = b.simulate_day(date(2021, 1, 1))
        assert day_a.update_count == day_b.update_count
        assert [r.to_tsv() for r in day_a.truth] == [r.to_tsv() for r in day_b.truth]

    def test_truth_matches_change_size(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        output = sim.simulate_day(date(2021, 1, 1))
        assert len(output.truth) == output.update_count

    def test_changesets_cover_all_updates(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        output = sim.simulate_day(date(2021, 1, 1))
        changeset_ids = {c.id for c in output.changesets}
        for _, element in output.change.actions():
            assert element.changeset in changeset_ids

    def test_changesets_have_bboxes(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        output = sim.simulate_day(date(2021, 1, 1))
        assert all(c.bbox is not None for c in output.changesets)

    def test_update_dates_match_day(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        day = date(2021, 2, 14)
        output = sim.simulate_day(day)
        assert all(r.date == day for r in output.truth)

    def test_activity_grows_over_years(self, atlas):
        sim = EditSimulator(
            atlas=atlas, config=small_config(base_sessions_per_day=20)
        )
        early = sum(
            sim._sessions_for(date(2010, 3, 1 + i)) for i in range(10)
        )
        late = sum(
            sim._sessions_for(date(2018, 3, 1 + i)) for i in range(10)
        )
        assert late > early

    def test_history_dump_parses_and_classifies(self, atlas, tmp_path):
        sim = EditSimulator(atlas=atlas, config=small_config())
        for output in sim.simulate_range(date(2021, 1, 1), date(2021, 1, 5)):
            pass
        path = tmp_path / "full.osm"
        count = sim.write_history_dump(path)
        updates = list(iter_history_updates(path))
        assert len(updates) == count

    def test_simulate_range_rejects_inverted(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        with pytest.raises(SimulationError):
            list(sim.simulate_range(date(2021, 1, 2), date(2021, 1, 1)))

    def test_road_network_sizes_positive(self, atlas):
        sim = EditSimulator(atlas=atlas, config=small_config())
        sizes = sim.road_network_sizes()
        assert len(sizes) == 250
        assert all(size >= 0 for size in sizes.values())
        assert sizes["united_states"] > 0

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(base_sessions_per_day=0)
        with pytest.raises(SimulationError):
            SimulationConfig(mapper_count=0)


class TestQueryWorkload:
    @pytest.fixture()
    def workload(self, small_schema):
        return QueryWorkload(
            schema=small_schema,
            coverage_start=date(2020, 1, 1),
            coverage_end=date(2021, 12, 31),
            seed=5,
        )

    def test_single_cell_queries_have_one_value_per_axis(self, workload):
        queries = workload.single_cell(span_days=30, count=20)
        assert len(queries) == 20
        for query in queries:
            assert len(query.element_types) == 1
            assert len(query.countries) == 1
            assert len(query.road_types) == 1
            assert len(query.update_types) == 1

    def test_windows_respect_span_and_coverage(self, workload):
        for query in workload.single_cell(span_days=90, count=30):
            assert (query.end - query.start).days + 1 == 90
            assert query.start >= date(2020, 1, 1)
            assert query.end <= date(2021, 12, 31)

    def test_deterministic(self, workload, small_schema):
        other = QueryWorkload(
            schema=small_schema,
            coverage_start=date(2020, 1, 1),
            coverage_end=date(2021, 12, 31),
            seed=5,
        )
        assert workload.single_cell(30, 10) == other.single_cell(30, 10)

    def test_span_clamped_to_coverage(self, small_schema):
        workload = QueryWorkload(
            schema=small_schema,
            coverage_start=date(2021, 1, 1),
            coverage_end=date(2021, 1, 10),
        )
        for query in workload.single_cell(span_days=400, count=5):
            assert query.start == date(2021, 1, 1)
            assert query.end == date(2021, 1, 10)

    def test_dashboard_mix_shapes(self, workload):
        queries = workload.dashboard_mix(span_days=60, count=40)
        group_bys = {q.group_by for q in queries}
        assert ("country", "element_type") in group_bys
        assert ("road_type", "element_type") in group_bys
        assert ("country", "date") in group_bys

    def test_recency_bias_skews_recent(self, workload):
        uniform = workload.single_cell(30, count=60, recent_bias=0.0)
        recent = workload.single_cell(30, count=60, recent_bias=1.0)
        mean_uniform = sum(q.start.toordinal() for q in uniform) / 60
        mean_recent = sum(q.start.toordinal() for q in recent) / 60
        assert mean_recent > mean_uniform
