"""The concurrency analyzer (repro.tools.conc) and lock witness
(repro.testing.lockwitness): fixture-tree detections, the clean-tree
gate, baseline/stale handling, and the static/runtime cross-check."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from collections import Counter
from pathlib import Path

import pytest

from repro.testing.lockwitness import LockWitness
from repro.tools.conc import ConcConfig, run_conc
from repro.tools.conc.runner import CONC_RULES
from repro.tools.lint.baseline import write_baseline
from repro.tools.lint.cli import prune_baseline
from repro.tools.lint.runner import run_lint

FIXTURE_ROOT = Path(__file__).parent / "lint_fixtures" / "fixturepkg"
FIXTURE_CONFIG = ConcConfig(top_package="fixturepkg")
HERE = Path(__file__).resolve().parent
SRC_SCOPE = Path(__file__).resolve().parents[1] / "src" / "repro"


def fixture_report(**kwargs):
    return run_conc(package_root=FIXTURE_ROOT, config=FIXTURE_CONFIG, **kwargs)


# -- fixture-tree detections -------------------------------------------------


class TestFixtureDetections:
    @pytest.fixture(scope="class")
    def report(self):
        return fixture_report()

    def test_rule_counts_are_exact(self, report):
        counts = Counter(f.rule for f in report.findings)
        assert counts == {
            "conc-lock-order": 2,
            "conc-blocking": 2,
            "conc-atomicity": 2,
            "conc-context": 2,
        }

    def test_lock_order_cycle_names_both_locks_and_the_trail(self, report):
        cycles = [
            f
            for f in report.findings
            if f.rule == "conc-lock-order" and "cycle" in f.message
        ]
        assert len(cycles) == 1
        (cycle,) = cycles
        assert cycle.path == "core/deadlock.py"
        assert "_ledger_lock" in cycle.message
        assert "_audit_lock" in cycle.message
        # The interprocedural edge's acquisition trail crosses the call.
        assert "credit" in cycle.message or "_record" in cycle.message

    def test_self_deadlock_is_reported(self, report):
        selfs = [
            f
            for f in report.findings
            if f.rule == "conc-lock-order" and "self-deadlock" in f.message
        ]
        assert len(selfs) == 1
        assert selfs[0].path == "core/deadlock.py"

    def test_blocking_direct_and_transitive(self, report):
        blocking = [f for f in report.findings if f.rule == "conc-blocking"]
        assert {f.path for f in blocking} == {"core/blockers.py"}
        messages = sorted(f.message for f in blocking)
        assert any("time.sleep" in m and "_drain" not in m for m in messages)
        assert any("_drain" in m for m in messages)  # the transitive one
        # flush_safely blocks before acquiring: must not be flagged.
        lines = {f.line for f in blocking}
        safe_line = _line_of("core/blockers.py", "must NOT be flagged")
        assert safe_line not in lines

    def test_atomicity_check_then_act_and_rmw(self, report):
        atomicity = [f for f in report.findings if f.rule == "conc-atomicity"]
        assert {f.path for f in atomicity} == {"core/checkact.py"}
        messages = sorted(f.message for f in atomicity)
        assert any("check-then-act" in m for m in messages)
        assert any("spans a lock release" in m for m in messages)

    def test_double_check_idiom_is_not_flagged(self, report):
        atomicity = [f for f in report.findings if f.rule == "conc-atomicity"]
        double_checked = _line_of("core/checkact.py", "re-validated under the lock")
        assert double_checked not in {f.line for f in atomicity}

    def test_context_submit_and_thread(self, report):
        context = [f for f in report.findings if f.rule == "conc-context"]
        assert {f.path for f in context} == {"core/handoff.py"}
        descriptions = sorted(f.message for f in context)
        assert any("Executor.submit" in m for m in descriptions)
        assert any("Thread(target=...)" in m for m in descriptions)
        # Both ambient kinds are called out with their capture helper.
        assert all("current_span" in m and "current_deadline" in m for m in descriptions)

    def test_capture_and_attach_shapes_pass(self, report):
        context_lines = {
            f.line for f in report.findings if f.rule == "conc-context"
        }
        for marker in ("submit_safe", "start_worker_safe"):
            start = _line_of("core/handoff.py", f"def {marker}")
            # No finding anchored inside the safe method (next 4 lines).
            assert not context_lines & set(range(start, start + 5))

    def test_each_rule_family_is_required(self, report):
        """Disabling one family removes exactly its findings — i.e.
        every fixture case genuinely depends on its rule."""
        family_to_rule = {
            "lock-order": "conc-lock-order",
            "blocking": "conc-blocking",
            "atomicity": "conc-atomicity",
            "context": "conc-context",
        }
        full = Counter(f.rule for f in report.findings)
        for family in CONC_RULES:
            partial = fixture_report(
                rules=[name for name in CONC_RULES if name != family]
            )
            counts = Counter(f.rule for f in partial.findings)
            expected = dict(full)
            expected.pop(family_to_rule[family])
            assert counts == expected, f"family {family}"

    def test_graph_includes_fixture_locks_and_edges(self, report):
        locks = report.graph["locks"]
        assert "fixturepkg.core.deadlock.Transfer._ledger_lock" in locks
        pairs = {(e["held"], e["acquired"]) for e in report.graph["edges"]}
        ledger = "fixturepkg.core.deadlock.Transfer._ledger_lock"
        audit = "fixturepkg.core.deadlock.Transfer._audit_lock"
        assert (ledger, audit) in pairs
        assert (audit, ledger) in pairs


def _line_of(rel_path: str, needle: str) -> int:
    lines = (FIXTURE_ROOT / rel_path).read_text().splitlines()
    for number, line in enumerate(lines, start=1):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in {rel_path}")


# -- the real tree -----------------------------------------------------------


class TestRealTree:
    def test_real_tree_is_clean_without_baseline(self):
        report = run_conc(baseline_path=None)
        assert report.findings == [], [
            f"{f.path}:{f.line} [{f.rule}] {f.message}" for f in report.findings
        ]

    def test_real_tree_findings_are_only_justified_suppressions(self):
        report = run_conc(baseline_path=None)
        # The known by-design patterns are suppressed inline, not
        # silently absent: the analyzer must still *see* them.  Two are
        # the server/executor lifecycle threads; two are the process-
        # pool dispatcher's submits, where spans cannot cross the
        # process boundary and the deadline is forwarded explicitly.
        assert report.suppressed == 4

    def test_real_tree_graph_covers_known_locks(self):
        report = run_conc(baseline_path=None)
        locks = report.graph["locks"]
        for qualname in (
            "repro.core.cache.CacheManager._lock",
            "repro.core.iosched.IOScheduler._lock",
            "repro.obs.metrics.MetricsRegistry._lock",
        ):
            assert qualname in locks, sorted(locks)


# -- baseline and staleness --------------------------------------------------


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        raw = fixture_report()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, raw.findings)
        report = fixture_report(baseline_path=baseline)
        assert report.ok
        assert report.baselined == len(raw.findings)
        assert report.stale_baseline == []

    def test_stale_conc_entries_are_reported(self, tmp_path):
        raw = fixture_report()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, raw.findings)
        payload = json.loads(baseline.read_text())
        payload["findings"].append(
            {
                "rule": "conc-blocking",
                "path": "fixturepkg/core/gone.py",
                "context": "with self._lock: time.sleep(1)",
            }
        )
        baseline.write_text(json.dumps(payload))
        report = fixture_report(baseline_path=baseline)
        assert report.ok
        assert report.stale_baseline == [
            "conc-blocking::fixturepkg/core/gone.py::"
            "with self._lock: time.sleep(1)"
        ]

    def test_lint_ignores_conc_entries_and_vice_versa(self, tmp_path):
        """The suites share one file; neither calls the other's live
        entries stale."""
        from repro.tools.lint.model import LintConfig

        conc_raw = fixture_report()
        lint_raw = run_lint(
            package_root=FIXTURE_ROOT,
            config=LintConfig(top_package="fixturepkg"),
        )
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, conc_raw.findings + lint_raw.findings)

        lint_report = run_lint(
            package_root=FIXTURE_ROOT,
            config=LintConfig(top_package="fixturepkg"),
            baseline_path=baseline,
        )
        assert lint_report.ok
        assert lint_report.stale_baseline == []
        conc_report = fixture_report(baseline_path=baseline)
        assert conc_report.ok
        assert conc_report.stale_baseline == []

    def test_prune_drops_only_dead_entries(self, tmp_path):
        from repro.tools.lint.model import LintConfig

        conc_raw = fixture_report()
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, conc_raw.findings)
        payload = json.loads(baseline.read_text())
        payload["findings"].append(
            {"rule": "todo", "path": "fixturepkg/core/gone.py", "context": "# TODO"}
        )
        baseline.write_text(json.dumps(payload))

        dropped = prune_baseline(
            baseline,
            FIXTURE_ROOT,
            lint_config=LintConfig(top_package="fixturepkg"),
            conc_config=FIXTURE_CONFIG,
        )
        # The dead synthetic entry goes; every live conc entry stays.
        assert dropped == ["todo::fixturepkg/core/gone.py::# TODO"]
        report = fixture_report(baseline_path=baseline)
        assert report.ok
        assert report.stale_baseline == []

    def test_prune_baseline_file_caps_counts(self, tmp_path):
        from repro.tools.lint.baseline import prune_baseline_file

        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"rule": "r", "path": "p.py", "context": "x", "count": 3},
                        {"rule": "dead", "path": "q.py", "context": "y"},
                    ],
                }
            )
        )
        dropped = prune_baseline_file(baseline, Counter({"r::p.py::x": 1}))
        assert dropped == ["dead::q.py::y"]
        payload = json.loads(baseline.read_text())
        assert payload["findings"] == [
            {"rule": "r", "path": "p.py", "context": "x"}
        ]


# -- the runtime witness -----------------------------------------------------


class TestLockWitness:
    def test_records_edges_and_restores_factories(self):
        original_lock = threading.Lock
        with LockWitness(scope_paths=[HERE]) as witness:
            first = threading.Lock()
            second = threading.Lock()
            with first:
                with second:
                    pass
        assert threading.Lock is original_lock
        assert len(witness.edges) == 1
        ((held, acquired),) = witness.edges
        assert held.endswith("test_conc.py:" + str(_my_line("first = ")))
        assert witness.inversions == []

    def test_detects_seeded_inversion_deterministically(self):
        """Two locks acquired in both orders — sequenced, so no actual
        deadlock — must be witnessed as an inversion."""
        with LockWitness(scope_paths=[HERE]) as witness:
            alpha = threading.Lock()
            beta = threading.Lock()
            with alpha:
                with beta:
                    pass

            def reversed_order() -> None:
                with beta:
                    with alpha:
                        pass

            worker = threading.Thread(target=reversed_order)
            worker.start()
            worker.join()
        assert len(witness.inversions) == 1
        assert len(witness.edges) == 2

    def test_rlock_reentry_records_no_self_edge(self):
        with LockWitness(scope_paths=[HERE]) as witness:
            lock = threading.RLock()
            with lock:
                with lock:  # re-entry, not a second lock
                    pass
        assert witness.edges == {}
        assert witness.inversions == []

    def test_out_of_scope_locks_get_real_primitives(self, tmp_path):
        with LockWitness(scope_paths=[tmp_path]) as witness:
            lock = threading.Lock()
            with lock:
                pass
        assert witness.lock_sites == {}

    def test_condition_wait_tracks_held_state(self):
        """A Condition release/reacquire cycle via wait() leaves the
        witness's per-thread stack balanced."""
        with LockWitness(scope_paths=[HERE]) as witness:
            condition = threading.Condition()
            other = threading.Lock()
            done = []

            def waiter() -> None:
                with condition:
                    condition.wait(timeout=5)
                    done.append(True)

            worker = threading.Thread(target=waiter)
            worker.start()
            while not condition._waiters:  # until wait() has parked
                if not worker.is_alive():
                    break
                _short_sleep()
            with condition:
                condition.notify_all()
            worker.join(timeout=5)
            assert done == [True]
            with other:  # stack must be clean: no ghost edge from cond
                pass
        pairs = set(witness.edges)
        assert not any(acquired.endswith(_site("other =")) for _, acquired in pairs)

    def test_artifact_round_trips(self, tmp_path):
        with LockWitness(scope_paths=[HERE]) as witness:
            outer = threading.Lock()
            inner = threading.Lock()
            with outer:
                with inner:
                    pass
            artifact = tmp_path / "witness.json"
            witness.write_artifact(artifact)
        payload = json.loads(artifact.read_text())
        assert payload["version"] == 1
        assert len(payload["locks"]) == 2
        assert len(payload["edges"]) == 1
        assert payload["inversions"] == []


def _short_sleep() -> None:
    import time

    time.sleep(0.001)


def _my_line(needle: str) -> int:
    lines = Path(__file__).read_text().splitlines()
    for number, line in enumerate(lines, start=1):
        if needle in line and "_my_line" not in line:
            return number
    raise AssertionError(needle)


def _site(needle: str) -> str:
    return f"test_conc.py:{_my_line(needle)}"


# -- static/runtime cross-check ----------------------------------------------


def _abs_fixture(rel_path: str) -> str:
    return str(FIXTURE_ROOT / rel_path)


def _fixture_witness(report) -> dict:
    """A witness artifact whose lock keys join against the fixture
    tree's static graph (absolute paths, static creation lines)."""
    locks = {}
    for qualname, info in report.graph["locks"].items():
        rel, _, line = info["site"].rpartition(":")
        key = f"{_abs_fixture(rel)}:{line}"
        locks[key] = {
            "path": _abs_fixture(rel),
            "line": int(line),
            "kind": info["kind"],
            "qualname": qualname,
        }
    return {"version": 1, "locks": locks, "edges": [], "inversions": []}


def _key_for(witness: dict, qualname_suffix: str) -> str:
    for key, info in witness["locks"].items():
        if info["qualname"].endswith(qualname_suffix):
            return key
    raise AssertionError(qualname_suffix)


class TestWitnessCrossCheck:
    @pytest.fixture()
    def static_report(self):
        return fixture_report()

    def _run(self, tmp_path, witness: dict, **kwargs):
        path = tmp_path / "witness.json"
        path.write_text(json.dumps(witness))
        # rules=[] isolates the witness cross-check from the fixture
        # tree's own (deliberate) rule findings.
        return fixture_report(witness_path=path, rules=[], **kwargs)

    def test_corroborated_edges_pass(self, tmp_path, static_report):
        witness = _fixture_witness(static_report)
        witness["edges"] = [
            {
                "from": _key_for(witness, "Transfer._ledger_lock"),
                "to": _key_for(witness, "Transfer._audit_lock"),
                "count": 4,
            }
        ]
        report = self._run(tmp_path, witness)
        assert not [f for f in report.findings if f.rule.startswith("conc-witness")]
        assert report.warnings == []

    def test_witnessed_edge_unknown_statically_is_blind_spot(
        self, tmp_path, static_report
    ):
        """Both locks are statically known, but no acquisition order
        between them is — the call graph has a blind spot there."""
        witness = _fixture_witness(static_report)
        witness["edges"] = [
            {
                "from": _key_for(witness, "SnapshotWriter._lock"),
                "to": _key_for(witness, "TallyBoard._lock"),
                "count": 1,
            }
        ]
        report = self._run(tmp_path, witness)
        blind = [f for f in report.warnings if f.rule == "conc-witness-blindspot"]
        assert len(blind) == 1
        assert "blind spot" in blind[0].message

    def test_contradiction_unit(self):
        from repro.tools.conc.lockorder import LockSimResult
        from repro.tools.conc.model import LockEdge, LockId
        from repro.tools.conc.witnesscheck import cross_check

        a = LockId("fx.A._lock", "Lock", "fx/a.py", 10)
        b = LockId("fx.B._lock", "Lock", "fx/b.py", 20)
        sim = LockSimResult(
            edges={(a.qualname, b.qualname): LockEdge(held=a, acquired=b)},
            locks={a.qualname: a, b.qualname: b},
        )
        witness = {
            "version": 1,
            "locks": {
                "/abs/fx/a.py:10": {"path": "/abs/fx/a.py", "line": 10, "kind": "Lock"},
                "/abs/fx/b.py:20": {"path": "/abs/fx/b.py", "line": 20, "kind": "Lock"},
            },
            "edges": [
                {"from": "/abs/fx/b.py:20", "to": "/abs/fx/a.py:10", "count": 1}
            ],
            "inversions": [],
        }
        failing, warnings = cross_check(sim, witness)
        assert len(failing) == 1
        assert failing[0].rule == "conc-witness-contradiction"
        assert warnings == []

    def test_runtime_inversion_fails(self, tmp_path, static_report):
        witness = _fixture_witness(static_report)
        witness["inversions"] = [
            {
                "a": _key_for(witness, "Transfer._ledger_lock"),
                "b": _key_for(witness, "Transfer._audit_lock"),
                "thread": "q-mix-1",
            }
        ]
        report = self._run(tmp_path, witness)
        inversions = [
            f for f in report.findings if f.rule == "conc-witness-inversion"
        ]
        assert len(inversions) == 1

    def test_unknown_lock_is_blind_spot_warning(self, tmp_path, static_report):
        witness = _fixture_witness(static_report)
        witness["locks"]["/somewhere/dynamic.py:7"] = {
            "path": "/somewhere/dynamic.py",
            "line": 7,
            "kind": "Lock",
        }
        witness["edges"] = [
            {
                "from": "/somewhere/dynamic.py:7",
                "to": _key_for(witness, "Transfer._ledger_lock"),
                "count": 1,
            }
        ]
        report = self._run(tmp_path, witness)
        assert report.ok
        assert len(report.warnings) == 1
        assert "never discovered" in report.warnings[0].message

    def test_strict_witness_promotes_warnings(self, tmp_path, static_report):
        witness = _fixture_witness(static_report)
        witness["edges"] = [
            {
                "from": _key_for(witness, "SnapshotWriter._lock"),
                "to": _key_for(witness, "TallyBoard._lock"),
                "count": 1,
            }
        ]
        report = self._run(tmp_path, witness, strict_witness=True)
        assert not report.ok
        assert any(f.rule == "conc-witness-blindspot" for f in report.findings)

    def test_end_to_end_witnessed_run_matches_static_graph(self, tmp_path):
        """Run real project code under the witness and cross-check the
        artifact against the real tree's static graph: no
        contradictions, no inversions."""
        artifact = tmp_path / "witness.json"
        with LockWitness(scope_paths=[SRC_SCOPE]) as witness:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.inc_key(_metric_key("rased_witness_smoke_total"))
            witness.write_artifact(artifact)
        report = run_conc(baseline_path=None, witness_path=artifact)
        assert report.findings == [], [
            f"{f.rule}: {f.message}" for f in report.findings
        ]


def _metric_key(name: str):
    from repro.obs import metric_key

    return metric_key(name)


# -- CLI ---------------------------------------------------------------------


class TestConcCli:
    def _run(self, *argv: str):
        import os

        repo_root = Path(__file__).parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.tools.conc", *argv],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env=env,
        )

    def test_fixture_tree_fails_with_findings(self):
        result = self._run(
            "--root",
            str(FIXTURE_ROOT),
            "--top-package",
            "fixturepkg",
            "--no-baseline",
            "--format",
            "json",
        )
        assert result.returncode == 1, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert len(payload["findings"]) == 8

    def test_real_tree_is_clean_via_cli(self):
        result = self._run("--no-baseline", "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["locks"] >= 10

    def test_dump_graph_writes_artifact(self, tmp_path):
        graph_path = tmp_path / "graph.json"
        result = self._run("--no-baseline", "--dump-graph", str(graph_path))
        assert result.returncode == 0
        payload = json.loads(graph_path.read_text())
        assert payload["version"] == 1
        assert "repro.core.cache.CacheManager._lock" in payload["locks"]

    def test_unknown_rule_is_rejected(self):
        result = self._run("--rules", "nonsense")
        assert result.returncode == 2
        assert "unknown conc rule" in result.stderr
