"""Tests for dimension schemas and value encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dimensions import (
    CubeSchema,
    Dimension,
    ELEMENT_TYPES,
    PAPER_ROAD_TYPES,
    UPDATE_TYPES,
    default_schema,
    element_dimension,
    paper_scale_schema,
    road_type_dimension,
    update_dimension,
)
from repro.errors import DimensionError


class TestDimension:
    def test_codes_are_dense_and_ordered(self):
        dim = Dimension("kind", ("a", "b", "c"))
        assert [dim.code(v) for v in dim] == [0, 1, 2]

    def test_value_roundtrip(self):
        dim = Dimension("kind", ("a", "b", "c"))
        for code in range(3):
            assert dim.code(dim.value(code)) == code

    def test_unknown_value_raises(self):
        dim = Dimension("kind", ("a",))
        with pytest.raises(DimensionError, match="unknown kind"):
            dim.code("zzz")

    def test_code_or_none(self):
        dim = Dimension("kind", ("a",))
        assert dim.code_or_none("a") == 0
        assert dim.code_or_none("zzz") is None

    def test_value_out_of_range_raises(self):
        dim = Dimension("kind", ("a",))
        with pytest.raises(DimensionError, match="out of range"):
            dim.value(5)

    def test_empty_dimension_rejected(self):
        with pytest.raises(DimensionError, match="no values"):
            Dimension("kind", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(DimensionError, match="duplicate"):
            Dimension("kind", ("a", "a"))

    def test_codes_none_means_all(self):
        dim = Dimension("kind", ("a", "b"))
        assert dim.codes(None) == [0, 1]

    def test_codes_subset(self):
        dim = Dimension("kind", ("a", "b", "c"))
        assert dim.codes(["c", "a"]) == [2, 0]

    def test_contains(self):
        dim = Dimension("kind", ("a",))
        assert "a" in dim
        assert "b" not in dim


class TestFixedDimensions:
    def test_element_dimension_matches_osm(self):
        assert tuple(element_dimension()) == ("node", "way", "relation")

    def test_update_dimension_has_four_paper_types(self):
        assert tuple(update_dimension()) == (
            "create",
            "delete",
            "geometry",
            "metadata",
        )
        assert len(UPDATE_TYPES) == 4

    def test_road_dimension_default_is_curated_list_plus_other(self):
        dim = road_type_dimension()
        assert tuple(dim) == PAPER_ROAD_TYPES + ("other",)

    def test_road_dimension_pads_to_requested_size(self):
        dim = road_type_dimension(150)
        assert len(dim) == 150
        assert "special_000" in dim
        assert dim.values[-1] == "other"

    def test_road_dimension_truncates_keeping_other(self):
        dim = road_type_dimension(3)
        assert tuple(dim) == PAPER_ROAD_TYPES[:2] + ("other",)

    def test_road_dimension_rejects_too_small(self):
        with pytest.raises(DimensionError):
            road_type_dimension(1)

    def test_common_types_survive_reduction(self):
        """Reduced schemas keep OSM's most frequent highway values."""
        dim = road_type_dimension(6)
        assert "residential" in dim
        assert "service" in dim


class TestCubeSchema:
    def test_shape_and_cell_count(self, tiny_schema):
        assert tiny_schema.shape == (3, 3, 8, 4)
        assert tiny_schema.cell_count == 3 * 3 * 8 * 4

    def test_paper_scale_is_540k_cells(self):
        schema = paper_scale_schema()
        assert schema.shape == (3, 300, 150, 4)
        assert schema.cell_count == 540_000

    def test_axis_lookup(self, tiny_schema):
        assert tiny_schema.axis("element_type") == 0
        assert tiny_schema.axis("update_type") == 3

    def test_axis_unknown_raises(self, tiny_schema):
        with pytest.raises(DimensionError):
            tiny_schema.axis("color")

    def test_dimension_lookup(self, tiny_schema):
        assert tiny_schema.dimension("country").name == "country"

    def test_encode_decode_roundtrip(self, tiny_schema):
        coords = tiny_schema.encode("way", "germany", "residential", "create")
        assert tiny_schema.decode(coords) == (
            "way",
            "germany",
            "residential",
            "create",
        )

    def test_encode_unknown_country_raises(self, tiny_schema):
        with pytest.raises(DimensionError):
            tiny_schema.encode("way", "atlantis", "residential", "create")

    def test_decode_wrong_arity_raises(self, tiny_schema):
        with pytest.raises(DimensionError):
            tiny_schema.decode((0, 1))

    def test_default_schema_uses_given_zones(self, atlas):
        schema = default_schema(atlas.zone_names(), road_types=8)
        assert len(schema.country) == len(atlas)
        assert "minnesota" in schema.country
        assert "asia" in schema.country

    @given(st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=3))
    def test_encode_decode_property(self, element_code, update_code):
        schema = default_schema(["a", "b"], road_types=4)
        values = (
            ELEMENT_TYPES[element_code],
            "b",
            schema.road_type.value(2),
            UPDATE_TYPES[update_code],
        )
        assert schema.decode(schema.encode(*values)) == values
