"""The crash matrix: kill ingestion everywhere, recover, compare bits.

The strongest claim the WAL makes is *exactly-once* ingestion across a
process kill at any moment.  This suite earns that claim the blunt
way: run a durable deployment over a fault-injecting store, crash it
at every named injection point of the ingest path × many seeds (the
seed picks which occurrence of the point dies), restart a fresh
process over the surviving pages, recover, finish ingestion — and
require the final store to be **bit-identical** (every non-WAL page)
to an uninterrupted run of the same deployment.

No cube counted twice, no warehouse row lost, no index entry skewed —
or the byte comparison fails.
"""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig
from repro.testing import CrashPoint, FaultPlan, FaultyPageStore

pytestmark = pytest.mark.slow

#: The ingest window: Jan 1-6 2021 crosses the week boundary on Sunday
#: Jan 3, so the matrix exercises roll-up writes too.
WINDOW_START = date(2021, 1, 1)
WINDOW_END = date(2021, 1, 6)

#: Every injection point the daily ingest path writes through.
MATRIX_POINTS = (
    "wal.append",
    "wal.undo",
    "warehouse.write",
    "warehouse.index",
    "index.put",
    "rollup",
    "cursor",
    "checkpoint",
)

SEEDS = range(10)


def _make_system(atlas, root, store) -> RasedSystem:
    return RasedSystem.create(
        root=root,
        atlas=atlas,
        store=store,
        config=SystemConfig(
            road_types=8,
            cache_slots=8,
            durable_ingest=True,
            simulation=SimulationConfig(
                seed=17,
                mapper_count=6,
                base_sessions_per_day=2,
                nodes_per_country=2,
            ),
        ),
    )


def _publish_window(atlas, root) -> None:
    """Publish the window's diffs + changesets with a throwaway system.

    The publisher and the crawler are deliberately *different* system
    instances (as in a real deployment, where the simulator is not the
    dashboard process): a crawler sharing the publisher's in-memory
    ChangesetStore sees full-precision bboxes, while one reopened from
    the flushed XML sees parsed floats — a bit-level difference that
    would otherwise masquerade as a recovery bug.
    """
    publisher = _make_system(
        atlas, root, InMemoryDisk(read_latency=0, write_latency=0)
    )
    day = WINDOW_START
    while day <= WINDOW_END:
        publisher.publish_day(day)
        day += timedelta(days=1)


def _snapshot(disk: InMemoryDisk) -> dict[str, bytes]:
    """Every durable page except the WAL's own bookkeeping (batch
    numbering legitimately differs once crashes enter the history)."""
    return {
        page_id: disk.read(page_id)
        for page_id in disk.list_pages("")
        if not page_id.startswith("wal/")
    }


@pytest.fixture(scope="module")
def uninterrupted(atlas, tmp_path_factory) -> dict[str, bytes]:
    """The golden run: same deployment, no faults, never killed."""
    root = tmp_path_factory.mktemp("golden-feed")
    _publish_window(atlas, root)
    disk = InMemoryDisk(read_latency=0, write_latency=0)
    system = _make_system(atlas, root, disk)
    system.pipeline.run_daily()
    return _snapshot(disk)


class TestCrashMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("point", MATRIX_POINTS)
    def test_kill_recover_resume_is_bit_identical(
        self, atlas, tmp_path, uninterrupted, point, seed
    ):
        _publish_window(atlas, tmp_path)
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        plan = FaultPlan.single(point, kind="crash", seed=seed, after=seed)
        faulty = FaultyPageStore(disk, plan)
        system = _make_system(atlas, tmp_path, faulty)
        crashed = False
        try:
            system.pipeline.run_daily()
        except CrashPoint:
            crashed = True
        # A fired crash spec must actually have killed the run.
        assert crashed == bool(plan.fired)

        # "Restart": a fresh process over the same store and feed root.
        # Its construction runs WAL recovery before any component scans
        # the store; recover() then resyncs pipeline state (idempotent
        # here) exactly as the CLI does on startup.
        faulty.plan = None
        reopened = _make_system(atlas, tmp_path, faulty)
        reopened.pipeline.recover()
        reopened.pipeline.run_daily()

        assert _snapshot(disk) == uninterrupted

    def test_crash_after_commit_point_loses_nothing(
        self, atlas, tmp_path, uninterrupted
    ):
        """Dying right *after* the intent delete (commit point) must
        keep the batch: recovery collects leftovers, never rolls back."""
        _publish_window(atlas, tmp_path)
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        plan = FaultPlan.single("checkpoint", kind="crash", when="after")
        faulty = FaultyPageStore(disk, plan)
        system = _make_system(atlas, tmp_path, faulty)
        with pytest.raises(CrashPoint):
            system.pipeline.run_daily()

        faulty.plan = None
        reopened = _make_system(atlas, tmp_path, faulty)
        report = reopened.pipeline.recover()
        assert report is not None and not report.rolled_back
        reopened.pipeline.run_daily()
        assert _snapshot(disk) == uninterrupted

    def test_double_crash_still_converges(self, atlas, tmp_path, uninterrupted):
        """Crash, restart, crash again at a different point, restart:
        recovery must be restartable, not merely callable once."""
        _publish_window(atlas, tmp_path)
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        faulty = FaultyPageStore(
            disk, FaultPlan.single("index.put", kind="crash", after=3)
        )
        system = _make_system(atlas, tmp_path, faulty)
        with pytest.raises(CrashPoint):
            system.pipeline.run_daily()

        faulty.plan = FaultPlan.single("warehouse.write", kind="crash", after=2)
        second = _make_system(atlas, tmp_path, faulty)
        second.pipeline.recover()
        with pytest.raises(CrashPoint):
            second.pipeline.run_daily()

        faulty.plan = None
        third = _make_system(atlas, tmp_path, faulty)
        third.pipeline.recover()
        third.pipeline.run_daily()
        assert _snapshot(disk) == uninterrupted

    @pytest.mark.parametrize("seed", range(5))
    def test_torn_write_mid_batch_recovers(
        self, atlas, tmp_path, uninterrupted, seed
    ):
        """A power-loss torn page (partial write then kill) rolls back
        like any other crash — the pre-image journal restores it."""
        _publish_window(atlas, tmp_path)
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        plan = FaultPlan.single(
            "store.write", kind="torn", seed=seed, after=20 + 5 * seed
        )
        faulty = FaultyPageStore(disk, plan)
        system = _make_system(atlas, tmp_path, faulty)
        crashed = False
        try:
            system.pipeline.run_daily()
        except CrashPoint:
            crashed = True
        assert crashed == bool(plan.fired)

        faulty.plan = None
        reopened = _make_system(atlas, tmp_path, faulty)
        reopened.pipeline.recover()
        reopened.pipeline.run_daily()
        assert _snapshot(disk) == uninterrupted
