"""Smoke tests for the example scripts.

Every example must at least compile; the self-contained quickstart and
live-monitoring scripts are executed end to end (the figure-replica
examples share a larger simulated system and are exercised by
``benchmarks/bench_examples_queries.py`` instead).
"""

from __future__ import annotations

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"
ALL_EXAMPLES = sorted(
    p for p in EXAMPLES_DIR.glob("*.py") if not p.name.startswith("_")
)


class TestExamplesCompile:
    def test_example_inventory(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "country_analysis.py",
            "road_type_analysis.py",
            "time_series_comparison.py",
            "http_dashboard.py",
            "live_monitoring.py",
            "stability_report.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)


def run_example(name: str) -> subprocess.CompletedProcess:
    # The child must find the repro package without the repo being
    # installed.  Build its PYTHONPATH from scratch — deliberately NOT
    # inheriting the parent's — so the examples provably run from a
    # clean environment plus src/ alone.
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    env["PYTHONPATH"] = str(SRC_DIR)
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        cwd=EXAMPLES_DIR,
        env=env,
        timeout=180,
    )


class TestExamplesRun:
    def test_quickstart_end_to_end(self):
        completed = run_example("quickstart.py")
        assert completed.returncode == 0, completed.stderr[-800:]
        assert "Top rows:" in completed.stdout
        assert "Sample updates" in completed.stdout

    def test_live_monitoring_end_to_end(self):
        completed = run_example("live_monitoring.py")
        assert completed.returncode == 0, completed.stderr[-800:]
        assert "with live overlay" in completed.stdout
        assert "Top contributors" in completed.stdout
