"""Tests for the dashboard: renderers, facade, timelapse, HTTP server."""

from __future__ import annotations

import json
import urllib.request
from datetime import date

import pytest

from repro.core.calendar import Level
from repro.core.query import AnalysisQuery, QueryResult, QueryStats
from repro.dashboard.charts import bar_chart, choropleth, time_series
from repro.dashboard.server import DashboardServer, query_from_json, result_to_json
from repro.dashboard.tables import format_value, render_pivot, render_table
from repro.errors import QueryError
from tests.conftest import INGESTED_END, INGESTED_START


def make_result(group_by=("country",), rows=None, metric="count"):
    query = AnalysisQuery(
        start=date(2021, 1, 1),
        end=date(2021, 1, 31),
        group_by=group_by,
        metric=metric,
    )
    return QueryResult(
        query=query,
        rows=rows if rows is not None else {("germany",): 120, ("qatar",): 30},
        stats=QueryStats(),
    )


class TestFormatting:
    def test_counts_get_thousand_separators(self):
        assert format_value(1234567) == "1,234,567"

    def test_float_percentages_keep_decimals(self):
        assert format_value(12.3456) == "12.35"

    def test_integral_float_renders_as_int(self):
        assert format_value(12.0) == "12"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(make_result())
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "country"
        assert "germany" in lines[2]
        assert "120" in lines[2]

    def test_sorted_by_value_descending_by_default(self):
        text = render_table(make_result())
        assert text.index("germany") < text.index("qatar")

    def test_sort_by_attribute_column(self):
        text = render_table(
            make_result(), sort_by="country", descending=False
        )
        assert text.index("germany") < text.index("qatar")

    def test_limit(self):
        text = render_table(make_result(), limit=1)
        assert "qatar" not in text

    def test_bad_sort_column_raises(self):
        with pytest.raises(QueryError):
            render_table(make_result(), sort_by="color")


class TestRenderPivot:
    def test_fig3_layout(self):
        rows = {
            ("germany", "way"): 10,
            ("germany", "node"): 5,
            ("qatar", "way"): 2,
        }
        result = make_result(group_by=("country", "element_type"), rows=rows)
        text = render_pivot(result, "country", "element_type")
        header = text.splitlines()[0]
        assert "All" in header
        assert "node" in header and "way" in header
        germany_line = next(l for l in text.splitlines() if "germany" in l)
        assert "15" in germany_line  # All column

    def test_rows_sorted_by_total(self):
        rows = {
            ("qatar", "way"): 50,
            ("germany", "way"): 10,
        }
        result = make_result(group_by=("country", "element_type"), rows=rows)
        text = render_pivot(result, "country", "element_type")
        assert text.index("qatar") < text.index("germany")

    def test_attribute_not_in_group_by_raises(self):
        with pytest.raises(QueryError):
            render_pivot(make_result(), "country", "element_type")

    def test_same_attribute_raises(self):
        rows = {("germany", "way"): 1}
        result = make_result(group_by=("country", "element_type"), rows=rows)
        with pytest.raises(QueryError):
            render_pivot(result, "country", "country")


class TestCharts:
    def test_bar_chart_contains_bars_and_labels(self):
        text = bar_chart(make_result())
        assert "germany" in text
        assert "#" in text
        germany_line = next(l for l in text.splitlines() if "germany" in l)
        qatar_line = next(l for l in text.splitlines() if "qatar" in l)
        assert germany_line.count("#") > qatar_line.count("#")

    def test_bar_chart_empty(self):
        assert bar_chart(make_result(rows={})) == "(no data)"

    def test_time_series_renders_grid_and_legend(self):
        rows = {
            ("germany", date(2021, 1, 1)): 5,
            ("germany", date(2021, 1, 2)): 9,
            ("qatar", date(2021, 1, 1)): 2,
        }
        result = make_result(group_by=("country", "date"), rows=rows)
        text = time_series(result)
        assert "o=germany" in text
        assert "x=qatar" in text
        assert "peak=9" in text

    def test_time_series_requires_date_group(self):
        with pytest.raises(QueryError):
            time_series(make_result())

    def test_choropleth_shades_by_value(self, atlas):
        result = make_result(rows={("germany",): 100, ("qatar",): 1})
        art = choropleth(result, atlas)
        assert "@" in art  # peak shade present
        assert "shade scale" in art

    def test_choropleth_requires_country_group(self, atlas):
        result = make_result(group_by=("element_type",), rows={("way",): 1})
        with pytest.raises(QueryError):
            choropleth(result, atlas)


class TestDashboardFacade:
    def test_table_view(self, ingested_system):
        text = ingested_system.dashboard.table(
            AnalysisQuery(
                start=INGESTED_START,
                end=INGESTED_END,
                group_by=("element_type",),
            )
        )
        assert "way" in text

    def test_pivot_view(self, ingested_system):
        text = ingested_system.dashboard.pivot(
            AnalysisQuery(
                start=INGESTED_START,
                end=INGESTED_END,
                countries=("germany", "france", "india"),
                group_by=("country", "element_type"),
            ),
            "country",
            "element_type",
        )
        assert "All" in text

    def test_timelapse_frames(self, ingested_system):
        frames = ingested_system.dashboard.timelapse(
            AnalysisQuery(
                start=INGESTED_START,
                end=INGESTED_END,
                group_by=("country",),
            ),
            frame_granularity=Level.MONTH,
        )
        assert len(frames) == 2
        assert frames[0].period_start == date(2021, 1, 1)
        assert "shade scale" in frames[0].art
        assert frames[0].title.startswith("2021-01-01")

    def test_timelapse_requires_country_group(self, ingested_system):
        with pytest.raises(QueryError):
            ingested_system.dashboard.timelapse(
                AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
            )

    def test_timelapse_rejects_date_group(self, ingested_system):
        with pytest.raises(QueryError):
            ingested_system.dashboard.timelapse(
                AnalysisQuery(
                    start=INGESTED_START,
                    end=INGESTED_END,
                    group_by=("country", "date"),
                )
            )

    def test_sample_updates_by_zone_name(self, ingested_system):
        samples = ingested_system.dashboard.sample_updates("germany", n=10)
        assert 0 < len(samples) <= 10
        assert all(s.country == "germany" for s in samples)

    def test_sample_updates_by_bbox(self, ingested_system):
        box = ingested_system.atlas.zone("france").bbox
        samples = ingested_system.dashboard.sample_updates(box, n=5)
        assert all(box.contains_point(s.point) for s in samples)

    def test_sample_default_size_is_100(self, ingested_system):
        samples = ingested_system.dashboard.sample_updates("united_states")
        assert len(samples) <= 100

    def test_changeset_updates_roundtrip(self, ingested_system):
        samples = ingested_system.dashboard.sample_updates("germany", n=1)
        changeset_id = samples[0].changeset_id
        rows = ingested_system.dashboard.changeset_updates(changeset_id)
        assert rows
        assert all(r.changeset_id == changeset_id for r in rows)

    def test_sql_of(self, ingested_system):
        sql = ingested_system.dashboard.sql_of(
            AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        )
        assert "FROM UpdateList U" in sql


class TestQueryJson:
    def test_full_roundtrip(self):
        payload = {
            "start": "2021-01-01",
            "end": "2021-02-28",
            "countries": ["germany", "qatar"],
            "group_by": ["country", "date"],
            "metric": "percentage",
            "date_granularity": "week",
        }
        query = query_from_json(payload)
        assert query.countries == ("germany", "qatar")
        assert query.date_granularity is Level.WEEK
        assert query.metric == "percentage"

    def test_missing_dates_rejected(self):
        with pytest.raises(QueryError):
            query_from_json({"start": "2021-01-01"})

    def test_bad_granularity_rejected(self):
        with pytest.raises(QueryError):
            query_from_json(
                {"start": "2021-01-01", "end": "2021-01-02", "date_granularity": "hour"}
            )

    def test_non_list_filter_rejected(self):
        with pytest.raises(QueryError):
            query_from_json(
                {"start": "2021-01-01", "end": "2021-01-02", "countries": "germany"}
            )

    def test_result_to_json_serializes_dates(self):
        rows = {("germany", date(2021, 1, 1)): 5}
        result = make_result(group_by=("country", "date"), rows=rows)
        payload = result_to_json(result)
        assert payload["rows"][0]["group"] == ["germany", "2021-01-01"]
        assert "sql" in payload
        assert "stats" in payload


@pytest.fixture(scope="module")
def server(ingested_system):
    with DashboardServer(ingested_system.dashboard) as running:
        yield running


def http_get(server, path):
    try:
        with urllib.request.urlopen(server.url + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpServer:
    def test_health(self, server):
        status, payload = http_get(server, "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["coverage"] == ["2021-01-01", "2021-02-28"]

    def test_zones(self, server):
        status, payload = http_get(server, "/zones")
        assert status == 200
        assert len(payload["zones"]) == 306

    def test_analysis_roundtrip(self, server):
        status, payload = http_post(
            server,
            "/analysis",
            {
                "start": "2021-01-01",
                "end": "2021-02-28",
                "group_by": ["element_type"],
            },
        )
        assert status == 200
        assert payload["group_by"] == ["element_type"]
        assert payload["rows"]
        assert payload["stats"]["cube_count"] >= 1

    def test_analysis_bad_query_is_400(self, server):
        status, payload = http_post(
            server, "/analysis", {"start": "2021-02-01", "end": "2021-01-01"}
        )
        assert status == 400
        assert "error" in payload

    def test_samples_endpoint(self, server):
        status, payload = http_get(server, "/samples?zone=germany&n=5")
        assert status == 200
        assert len(payload["samples"]) <= 5

    def test_samples_requires_zone(self, server):
        status, payload = http_get(server, "/samples")
        assert status == 400

    def test_changeset_endpoint(self, server, ingested_system):
        sample = ingested_system.dashboard.sample_updates("germany", n=1)[0]
        status, payload = http_get(server, f"/changeset/{sample.changeset_id}")
        assert status == 200
        assert payload["updates"]

    def test_unknown_path_is_404(self, server):
        status, _ = http_get(server, "/nope")
        assert status == 404


class TestSampleForQuery:
    def test_samples_respect_all_filters(self, ingested_system):
        from tests.conftest import INGESTED_END, INGESTED_START

        query = AnalysisQuery(
            start=date(2021, 1, 10),
            end=date(2021, 2, 10),
            countries=("germany",),
            element_types=("way",),
            update_types=("create",),
        )
        samples = ingested_system.dashboard.sample_for_query(query, n=10)
        for record in samples:
            assert record.element_type == "way"
            assert record.update_type == "create"
            assert date(2021, 1, 10) <= record.date <= date(2021, 2, 10)
            box = ingested_system.atlas.zone("germany").bbox
            assert box.contains_point(record.point)

    def test_sample_size_bounded(self, ingested_system):
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END)
        samples = ingested_system.dashboard.sample_for_query(query, n=7)
        assert len(samples) == 7

    def test_no_matches_returns_empty(self, ingested_system):
        query = AnalysisQuery(
            start=date(2020, 1, 1), end=date(2020, 1, 2)  # before coverage
        )
        assert ingested_system.dashboard.sample_for_query(query, n=5) == []

    def test_samples_unique(self, ingested_system):
        query = AnalysisQuery(start=INGESTED_START, end=INGESTED_END,
                              countries=("france", "germany"))
        samples = ingested_system.dashboard.sample_for_query(query, n=50)
        identities = [
            (r.changeset_id, r.latitude, r.longitude, r.element_type, r.update_type)
            for r in samples
        ]
        assert len(identities) == len(set(identities))


class TestHttpServerExtensions:
    def test_analysis_sql_endpoint(self, server):
        status, payload = http_post(
            server,
            "/analysis/sql",
            {
                "sql": (
                    "SELECT U.ElementType, COUNT(*) FROM UpdateList U "
                    "WHERE U.Date BETWEEN 2021-01-01 AND 2021-02-28 "
                    "GROUP BY U.ElementType"
                )
            },
        )
        assert status == 200
        assert payload["rows"]

    def test_analysis_sql_bad_body(self, server):
        status, payload = http_post(server, "/analysis/sql", {"nope": 1})
        assert status == 400

    def test_analysis_sql_bad_dialect(self, server):
        status, payload = http_post(server, "/analysis/sql", {"sql": "DELETE"})
        assert status == 400
        assert "error" in payload

    def test_analysis_live_endpoint(self, server):
        status, payload = http_post(
            server,
            "/analysis/live",
            {"start": "2021-01-01", "end": "2021-02-28"},
        )
        assert status == 200
        # No live monitor days pending; result equals plain analysis.
        plain_status, plain = http_post(
            server, "/analysis", {"start": "2021-01-01", "end": "2021-02-28"}
        )
        assert payload["rows"] == plain["rows"]

    def test_contributors_endpoint(self, server):
        status, payload = http_get(server, "/contributors?n=3")
        assert status == 200
        contributors = payload["contributors"]
        assert 0 < len(contributors) <= 3
        assert contributors[0]["changes"] >= contributors[-1]["changes"]
