"""Tests for the recency cache and the level optimizer — including the
paper's worked examples from Sections VII-A and VII-B."""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.core.cache import CacheManager, CacheRatios, slots_for_bytes
from repro.core.calendar import Level, day_key, month_key, week_key, year_key
from repro.core.hierarchy import HierarchicalIndex
from repro.core.optimizer import FlatPlanner, LevelOptimizer
from repro.errors import ConfigError, PlanError
from repro.collection.records import UpdateList, UpdateRecord
from repro.storage.disk import InMemoryDisk


def updates_for(day: date, n: int = 1) -> UpdateList:
    return UpdateList(
        UpdateRecord(
            element_type="way",
            date=day,
            country="germany",
            latitude=50.0,
            longitude=10.0,
            road_type="residential",
            update_type="geometry",
            changeset_id=i + 1,
        )
        for i in range(n)
    )


@pytest.fixture(scope="module")
def year_index(tiny_schema):
    """A full-year index (2021-01-01 .. 2022-02-28) for planning tests."""
    disk = InMemoryDisk(read_latency=0.0, write_latency=0.0)
    index = HierarchicalIndex(tiny_schema, disk)
    day = date(2021, 1, 1)
    while day <= date(2022, 2, 28):
        index.ingest_day(day, updates_for(day))
        day += timedelta(days=1)
    return index


class TestCacheRatios:
    def test_defaults_are_paper_values(self):
        ratios = CacheRatios()
        assert (ratios.alpha, ratios.beta, ratios.gamma, ratios.theta) == (
            0.4,
            0.35,
            0.2,
            0.05,
        )

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            CacheRatios(0.5, 0.5, 0.5, 0.5)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ConfigError):
            CacheRatios(-0.1, 0.5, 0.5, 0.1)

    def test_slot_allotment_sums_to_total(self):
        allotment = CacheRatios().slots_per_level(100)
        assert sum(allotment.values()) == 100
        assert allotment[Level.DAY] == 40
        assert allotment[Level.WEEK] == 35
        assert allotment[Level.MONTH] == 20
        assert allotment[Level.YEAR] == 5

    def test_remainder_goes_to_daily(self):
        allotment = CacheRatios().slots_per_level(7)
        assert sum(allotment.values()) == 7

    def test_slots_for_bytes(self, tiny_schema):
        from repro.storage.serializer import cube_page_size

        page = cube_page_size(tiny_schema)
        assert slots_for_bytes(10 * page, tiny_schema) == 10
        assert slots_for_bytes(page - 1, tiny_schema) == 0


class TestCachePreload:
    def test_preload_picks_most_recent_per_level(self, year_index):
        cache = CacheManager(year_index, slots=20)
        cache.preload()
        contents = cache.contents()
        # The newest daily cube must be cached.
        assert day_key(date(2022, 2, 28)) in contents
        # The newest yearly cube must be cached (theta > 0 => 1 slot).
        assert year_key(2021) in contents

    def test_preload_respects_allotments(self, year_index):
        cache = CacheManager(year_index, slots=20)
        loaded = cache.preload()
        assert loaded == cache.cached_count <= 20
        by_level = {}
        for key in cache.contents():
            by_level[key.level] = by_level.get(key.level, 0) + 1
        allotment = cache.ratios.slots_per_level(20)
        for level, count in by_level.items():
            assert count <= allotment[level]

    def test_zero_slots_cache_is_empty(self, year_index):
        cache = CacheManager(year_index, slots=0)
        assert cache.preload() == 0
        assert cache.get(day_key(date(2022, 2, 28))) is None

    def test_hit_and_miss_counters(self, year_index):
        cache = CacheManager(year_index, slots=10)
        cache.preload()
        assert cache.get(day_key(date(2022, 2, 28))) is not None
        assert cache.get(day_key(date(2021, 6, 15))) is None
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_negative_slots_rejected(self, year_index):
        with pytest.raises(ConfigError):
            CacheManager(year_index, slots=-1)

    def test_admit_disabled_by_default(self, year_index):
        cache = CacheManager(year_index, slots=10)
        cache.preload()
        cube = year_index.get(day_key(date(2021, 6, 15)))
        cache.admit(cube)
        assert day_key(date(2021, 6, 15)) not in cache.contents()

    def test_admit_with_lru_eviction(self, year_index):
        cache = CacheManager(year_index, slots=3, admit_on_miss=True)
        for day in (date(2021, 5, 1), date(2021, 5, 2), date(2021, 5, 3), date(2021, 5, 4)):
            cache.admit(year_index.get(day_key(day)))
        assert cache.cached_count == 3
        assert day_key(date(2021, 5, 1)) not in cache.contents()

    def test_refresh_key_reloads(self, year_index):
        cache = CacheManager(year_index, slots=5)
        cache.preload()
        key = day_key(date(2022, 2, 28))
        assert key in cache.contents()
        cache.refresh_key(key)  # must not raise; reloads from the index
        assert cache.get(key) is not None

    def test_daily_heavy_ratios_cache_more_days(self, year_index):
        daily_heavy = CacheManager(
            year_index, slots=20, ratios=CacheRatios(1.0, 0.0, 0.0, 0.0)
        )
        daily_heavy.preload()
        assert all(k.level is Level.DAY for k in daily_heavy.contents())
        assert daily_heavy.cached_count == 20


class TestByteBudgetCache:
    def test_negative_budget_rejected(self, year_index):
        with pytest.raises(ConfigError):
            CacheManager(year_index, slots=0, byte_budget=-1)

    def test_preload_respects_byte_allotments(self, year_index, tiny_schema):
        page = tiny_schema.cell_count * 8  # dense cube payload bytes
        budget = 10 * page
        cache = CacheManager(year_index, slots=0, byte_budget=budget)
        cache.preload()
        assert 0 < cache.cached_bytes <= budget
        used = sum(
            year_index.get(key).nbytes for key in cache.contents()
        )
        assert used == cache.cached_bytes

    def test_preload_prefers_newest_per_level(self, year_index):
        cache = CacheManager(
            year_index,
            slots=0,
            byte_budget=4 * year_index.schema.cell_count * 8,
            ratios=CacheRatios(1.0, 0.0, 0.0, 0.0),
        )
        cache.preload()
        cached_days = sorted(k for k in cache.contents())
        assert cached_days  # budget buys at least one daily cube
        assert day_key(date(2022, 2, 28)) in cache.contents()
        assert all(k.level is Level.DAY for k in cached_days)

    def test_zero_budget_cache_is_empty(self, year_index):
        cache = CacheManager(year_index, slots=99, byte_budget=0)
        assert cache.preload() == 0
        assert not cache.has_capacity

    def test_admit_evicts_by_bytes(self, year_index):
        page = year_index.schema.cell_count * 8
        cache = CacheManager(
            year_index, slots=0, byte_budget=2 * page, admit_on_miss=True
        )
        for day in (date(2021, 5, 1), date(2021, 5, 2), date(2021, 5, 3)):
            cache.admit(year_index.get(day_key(day)))
        assert cache.cached_bytes <= 2 * page
        assert day_key(date(2021, 5, 1)) not in cache.contents()
        assert day_key(date(2021, 5, 3)) in cache.contents()

    def test_admit_rejects_cube_bigger_than_budget(self, year_index):
        cache = CacheManager(
            year_index, slots=0, byte_budget=8, admit_on_miss=True
        )
        cache.admit(year_index.get(day_key(date(2021, 5, 1))))
        assert cache.cached_count == 0

    def test_clear_resets_bytes(self, year_index):
        page = year_index.schema.cell_count * 8
        cache = CacheManager(year_index, slots=0, byte_budget=8 * page)
        cache.preload()
        assert cache.cached_bytes > 0
        cache.clear()
        assert cache.cached_bytes == 0

    def test_sparse_cubes_stretch_the_budget(self, tiny_schema):
        """Byte accounting is the point of the sparse form: the same
        budget holds far more near-empty cubes than dense pages."""
        from repro.storage.serializer import PAGE_VERSION_SPARSE

        disk = InMemoryDisk(read_latency=0.0, write_latency=0.0)
        index = HierarchicalIndex(
            tiny_schema, disk, page_version=PAGE_VERSION_SPARSE, sparse=True
        )
        day = date(2021, 1, 1)
        while day <= date(2021, 3, 31):
            index.ingest_day(day, updates_for(day))
            day += timedelta(days=1)
        budget = 2 * tiny_schema.cell_count * 8  # two dense pages
        cache = CacheManager(
            index,
            slots=0,
            byte_budget=budget,
            ratios=CacheRatios(1.0, 0.0, 0.0, 0.0),
        )
        cache.preload()
        assert cache.cached_count > 2  # sparse: many cubes per "page"
        assert cache.cached_bytes <= budget


class TestLevelOptimizer:
    def test_paper_example_without_cache(self, year_index):
        """Jan 1 - Feb 15, 2022: with month-aligned weeks, the optimum
        is 1 monthly + 2 weekly + 1 daily = 4 cubes (the paper's Sunday
        weeks give 10; see EXPERIMENTS.md on the week convention)."""
        optimizer = LevelOptimizer(year_index)
        plan = optimizer.plan(date(2022, 1, 1), date(2022, 2, 15))
        assert [str(k) for k in plan.keys] == [
            "M2022-01",
            "W2022-02.0",
            "W2022-02.1",
            "D2022-02-15",
        ]
        assert plan.disk_reads == 4

    def test_cache_changes_the_chosen_plan(self, year_index):
        """The paper's Section VII-B point: with all daily cubes of the
        window cached and no coarser cubes cached, the all-daily plan
        wins (zero disk) over the 4-cube mixed plan."""
        optimizer = LevelOptimizer(year_index)
        window = [
            day_key(date(2022, 1, 1) + timedelta(days=i)) for i in range(46)
        ]
        cached = frozenset(window)
        plan = optimizer.plan(date(2022, 1, 1), date(2022, 2, 15), cached)
        assert plan.disk_reads == 0
        assert plan.cube_count == 46
        assert all(k.level is Level.DAY for k in plan.keys)

    def test_partial_cache_mixes_levels(self, year_index):
        optimizer = LevelOptimizer(year_index)
        cached = frozenset({month_key(2022, 1)})
        plan = optimizer.plan(date(2022, 1, 1), date(2022, 2, 15), cached)
        assert month_key(2022, 1) in plan.keys
        assert plan.cache_hits == 1
        assert plan.disk_reads == 3

    def test_full_year_plan_is_one_cube(self, year_index):
        optimizer = LevelOptimizer(year_index)
        plan = optimizer.plan(date(2021, 1, 1), date(2021, 12, 31))
        assert plan.keys == [year_key(2021)]

    def test_single_day_plan(self, year_index):
        optimizer = LevelOptimizer(year_index)
        plan = optimizer.plan(date(2021, 6, 15), date(2021, 6, 15))
        assert plan.keys == [day_key(date(2021, 6, 15))]

    def test_plan_covers_range_exactly(self, year_index):
        optimizer = LevelOptimizer(year_index)
        start, end = date(2021, 3, 10), date(2021, 8, 20)
        plan = optimizer.plan(start, end)
        covered_days = []
        for key in plan.keys:
            d = key.start
            while d <= key.end:
                covered_days.append(d)
                d += timedelta(days=1)
        expected = []
        d = start
        while d <= end:
            expected.append(d)
            d += timedelta(days=1)
        assert covered_days == expected

    def test_plan_is_minimal_vs_canonical_cover(self, year_index):
        from repro.core.calendar import cover_range

        optimizer = LevelOptimizer(year_index)
        start, end = date(2021, 2, 3), date(2021, 11, 19)
        plan = optimizer.plan(start, end)
        assert plan.cube_count <= len(cover_range(start, end))

    def test_inverted_range_rejected(self, year_index):
        with pytest.raises(PlanError):
            LevelOptimizer(year_index).plan(date(2021, 2, 1), date(2021, 1, 1))

    def test_missing_coverage_recorded(self, year_index):
        optimizer = LevelOptimizer(year_index)
        plan = optimizer.plan(date(2022, 2, 25), date(2022, 3, 5))
        assert plan.missing_days == [
            date(2022, 3, 1) + timedelta(days=i) for i in range(5)
        ]

    def test_levels_used_summary(self, year_index):
        optimizer = LevelOptimizer(year_index)
        plan = optimizer.plan(date(2022, 1, 1), date(2022, 2, 15))
        used = plan.levels_used()
        assert used[Level.MONTH] == 1
        assert used[Level.WEEK] == 2
        assert used[Level.DAY] == 1

    def test_restricted_levels(self, year_index):
        optimizer = LevelOptimizer(year_index, levels=(Level.DAY, Level.WEEK))
        plan = optimizer.plan(date(2021, 1, 1), date(2021, 12, 31))
        assert all(k.level in (Level.DAY, Level.WEEK) for k in plan.keys)

    def test_planner_requires_day_level(self, year_index):
        with pytest.raises(PlanError):
            LevelOptimizer(year_index, levels=(Level.WEEK,))


class TestFlatPlanner:
    def test_always_daily(self, year_index):
        planner = FlatPlanner(year_index)
        plan = planner.plan(date(2021, 1, 1), date(2021, 12, 31))
        assert plan.cube_count == 365
        assert all(k.level is Level.DAY for k in plan.keys)

    def test_ignores_cache(self, year_index):
        planner = FlatPlanner(year_index)
        cached = frozenset({day_key(date(2021, 1, 1))})
        plan = planner.plan(date(2021, 1, 1), date(2021, 1, 10), cached)
        assert plan.disk_reads == 10
