"""Tests for the live (hourly) monitoring overlay."""

from __future__ import annotations

from datetime import date, datetime, timezone

import pytest

from repro.core.calendar import Level
from repro.core.dimensions import default_schema
from repro.core.executor import QueryExecutor
from repro.core.hierarchy import HierarchicalIndex
from repro.core.query import AnalysisQuery
from repro.collection.geocode import Geocoder
from repro.core.live import LiveMonitor, split_change_by_hour
from repro.osm.changesets import ChangesetStore
from repro.osm.replication import ReplicationFeed
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import EditSimulator, SimulationConfig


@pytest.fixture(scope="module")
def live_setup(atlas, tmp_path_factory):
    """Two full days ingested daily + a third day available only hourly."""
    root = tmp_path_factory.mktemp("live")
    schema = default_schema(atlas.zone_names(), road_types=8)
    sim = EditSimulator(
        atlas=atlas,
        config=SimulationConfig(
            seed=31, mapper_count=20, base_sessions_per_day=6, nodes_per_country=8
        ),
    )
    day_feed = ReplicationFeed(root / "replication", "day")
    hour_feed = ReplicationFeed(root / "replication", "hour")
    changesets = ChangesetStore(root / "changesets")
    disk = InMemoryDisk(read_latency=0, write_latency=0)
    index = HierarchicalIndex(schema, disk, atlas=atlas)

    truth = {}
    for output in sim.simulate_range(date(2021, 5, 1), date(2021, 5, 3)):
        for changeset in output.changesets:
            changesets.add(changeset)
        changesets.flush()
        truth[output.day] = output.truth
        stamp = datetime.combine(output.day, datetime.min.time(), tzinfo=timezone.utc)
        # Hourly feed gets every day; the daily feed lags one day:
        # May 3 exists only as hourly diffs ("today").
        for _, hourly_change in split_change_by_hour(output.change):
            hour_feed.publish(hourly_change, stamp)
        if output.day < date(2021, 5, 3):
            day_feed.publish(output.change, stamp)

    # Ingest the daily feed (May 1-2) into the index.
    from repro.collection.daily import DailyCrawler

    crawler = DailyCrawler(day_feed, changesets, Geocoder(atlas))
    for result in crawler.crawl_new():
        index.ingest_day(result.day, result.updates)

    monitor = LiveMonitor(
        hour_feed, changesets, Geocoder(atlas), schema, atlas=atlas
    )
    monitor.poll()
    # Days already ingested by the daily pipeline are dropped from the
    # overlay; only "today" (May 3) remains live.
    monitor.discard_through(date(2021, 5, 2))
    executor = QueryExecutor(index)
    return index, executor, monitor, truth


class TestSplitByHour:
    def test_split_covers_all_updates(self, atlas):
        sim = EditSimulator(
            atlas=atlas,
            config=SimulationConfig(
                seed=8, mapper_count=10, base_sessions_per_day=5, nodes_per_country=6
            ),
        )
        output = sim.simulate_day(date(2021, 6, 1))
        pieces = split_change_by_hour(output.change)
        assert sum(len(change) for _, change in pieces) == len(output.change)
        hours = [hour for hour, _ in pieces]
        assert hours == sorted(hours)
        for hour, change in pieces:
            for _, element in change.actions():
                assert element.timestamp.hour == hour


class TestLiveMonitor:
    def test_poll_consumes_all_hours(self, live_setup):
        _, _, monitor, _ = live_setup
        assert monitor.hours_processed > 0
        assert monitor.poll() == 0  # idempotent until new data arrives

    def test_partial_day_is_today_only(self, live_setup):
        _, _, monitor, _ = live_setup
        assert monitor.partial_days() == [date(2021, 5, 3)]

    def test_partial_cube_counts_match_truth(self, live_setup):
        _, _, monitor, truth = live_setup
        cube = monitor.partial_cube(date(2021, 5, 3))
        assert cube is not None
        # Zone expansion counts each update 2-3 times; the unexpanded
        # total equals truth row count when filtered to countries.
        today_truth = truth[date(2021, 5, 3)]
        assert cube.total >= len(today_truth)

    def test_overlay_extends_window_to_today(self, live_setup):
        index, executor, monitor, truth = live_setup
        query = AnalysisQuery(
            start=date(2021, 5, 1),
            end=date(2021, 5, 3),
            group_by=("element_type",),
        )
        stale = executor.execute(query)
        stale_total = stale.total
        live = executor.execute(query)
        applied = monitor.overlay(query, live)
        assert applied == 1
        expected_today = len(truth[date(2021, 5, 3)])
        assert live.total == stale_total + expected_today

    def test_overlay_matches_daily_ingestion_exactly(self, live_setup, atlas):
        """The hourly overlay for a day equals what daily ingestion of
        the same day would produce — same after-images, same counts."""
        index, executor, monitor, truth = live_setup
        query = AnalysisQuery(
            start=date(2021, 5, 3),
            end=date(2021, 5, 3),
            group_by=("country", "element_type", "update_type"),
        )
        live = executor.execute(query)
        monitor.overlay(query, live)

        # Reference: ingest May 3's truth into a scratch index, with
        # update types coarsened exactly as the (hourly or daily)
        # crawler reports them: metadata folds into geometry.
        import dataclasses

        from repro.collection.records import UpdateList

        coarsened = UpdateList(
            dataclasses.replace(record, update_type="geometry")
            if record.update_type == "metadata"
            else record
            for record in truth[date(2021, 5, 3)]
        )
        scratch_disk = InMemoryDisk(read_latency=0, write_latency=0)
        scratch = HierarchicalIndex(index.schema, scratch_disk, atlas=atlas)
        scratch.ingest_day(date(2021, 5, 3), coarsened)
        reference = QueryExecutor(scratch).execute(query)
        assert live.rows == reference.rows

    def test_overlay_respects_filters(self, live_setup):
        _, executor, monitor, truth = live_setup
        query = AnalysisQuery(
            start=date(2021, 5, 3),
            end=date(2021, 5, 3),
            element_types=("way",),
        )
        result = executor.execute(query)
        monitor.overlay(query, result)
        way_truth = sum(
            1 for r in truth[date(2021, 5, 3)] if r.element_type == "way"
        )
        assert result.total == way_truth

    def test_overlay_outside_window_is_noop(self, live_setup):
        _, executor, monitor, _ = live_setup
        query = AnalysisQuery(start=date(2021, 5, 1), end=date(2021, 5, 2))
        result = executor.execute(query)
        before = dict(result.rows)
        assert monitor.overlay(query, result) == 0
        assert result.rows == before

    def test_overlay_skips_percentage_queries(self, live_setup):
        _, executor, monitor, _ = live_setup
        query = AnalysisQuery(
            start=date(2021, 5, 3),
            end=date(2021, 5, 3),
            metric="percentage",
            countries=("germany",),
        )
        result_rows = {(): 1.0}

        class _Fake:
            rows = result_rows

        assert monitor.overlay(query, _Fake()) == 0

    def test_overlay_date_series(self, live_setup):
        _, executor, monitor, truth = live_setup
        query = AnalysisQuery(
            start=date(2021, 5, 1),
            end=date(2021, 5, 3),
            group_by=("date",),
            date_granularity=Level.DAY,
        )
        result = executor.execute(query)
        monitor.overlay(query, result)
        assert result.rows[(date(2021, 5, 3),)] == len(truth[date(2021, 5, 3)])

    def test_discard_day(self, live_setup):
        _, _, monitor, _ = live_setup
        # Non-destructive check on a copy-like day that doesn't exist.
        assert monitor.discard_day(date(2020, 1, 1)) is False
