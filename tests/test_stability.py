"""Tests for stability analysis and scenario injection.

The key end-to-end check: plant an import event and a vandalism burst
with the scenario simulator, run the ordinary pipeline, and verify the
stability analyzer finds exactly the planted days.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.core.stability import StabilityAnalyzer
from repro.core.query import AnalysisQuery
from repro.errors import QueryError, SimulationError
from repro.storage.disk import InMemoryDisk
from repro.synth.scenarios import (
    ScenarioEvent,
    ScenarioSimulator,
    import_event,
    mapping_party,
    vandalism_event,
)
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig

SPAN = (date(2021, 3, 1), date(2021, 3, 31))
IMPORT_DAY = date(2021, 3, 17)
VANDAL_DAY = date(2021, 3, 24)


@pytest.fixture(scope="module")
def scenario_system(atlas):
    """A month with an import in qatar and vandalism in france."""
    system = RasedSystem.create(
        atlas=atlas,
        store=InMemoryDisk(read_latency=0, write_latency=0),
        config=SystemConfig(
            road_types=8,
            cache_slots=16,
            simulation=SimulationConfig(
                seed=55, mapper_count=30, base_sessions_per_day=10, nodes_per_country=8
            ),
        ),
    )
    # Swap the simulator for a scenario-enabled one sharing the config.
    system.simulator = ScenarioSimulator(
        atlas=atlas,
        config=system.config.simulation,
        events=[
            import_event(IMPORT_DAY, "qatar", sessions=8),
            vandalism_event(VANDAL_DAY, "france", sessions=6),
        ],
    )
    system.simulate_and_ingest(*SPAN, monthly_rebuild=True)
    system.warm_cache()
    # Denominators moved with the new simulator's world.
    for country, size in system.simulator.road_network_sizes().items():
        system.network_sizes.update_country(country, size)
    return system


@pytest.fixture(scope="module")
def analyzer(scenario_system):
    return StabilityAnalyzer(
        scenario_system.executor, scenario_system.network_sizes
    )


class TestScenarioSimulator:
    def test_unknown_country_rejected(self, atlas):
        sim = ScenarioSimulator(
            atlas=atlas,
            config=SimulationConfig(
                seed=1, mapper_count=10, base_sessions_per_day=4, nodes_per_country=6
            ),
        )
        with pytest.raises(Exception):
            sim.schedule(import_event(date(2021, 1, 1), "atlantis"))

    def test_zero_sessions_rejected(self):
        with pytest.raises(SimulationError):
            ScenarioEvent(
                day=date(2021, 1, 1),
                country="qatar",
                profile=mapping_party(date(2021, 1, 1), "qatar").profile,
                sessions=0,
                user="x",
            )

    def test_event_day_has_extra_activity(self, scenario_system):
        """The import day's qatar count dwarfs ordinary days."""
        from collections import Counter

        per_day = Counter()
        for day, truth in scenario_system.truth_by_day.items():
            per_day[day] = sum(1 for r in truth if r.country == "qatar")
        ordinary = [
            count for day, count in per_day.items() if day != IMPORT_DAY
        ]
        assert per_day[IMPORT_DAY] > 5 * (max(ordinary) or 1)

    def test_event_flows_through_changesets(self, scenario_system):
        users = {
            c.user
            for c in scenario_system.changeset_store
        }
        assert "import_program_qatar" in users
        assert "suspicious_france" in users

    def test_scheduled_days(self, scenario_system):
        assert scenario_system.simulator.scheduled_days() == [IMPORT_DAY, VANDAL_DAY]


class TestStabilityMetrics:
    def test_metrics_fields_consistent(self, analyzer):
        metrics = analyzer.zone_metrics("germany", *SPAN)
        assert metrics.zone == "germany"
        assert metrics.days == 31
        assert metrics.total_updates >= 0
        assert metrics.daily_mean == pytest.approx(metrics.total_updates / 31)
        assert 0 < metrics.stability_score <= 1.0

    def test_total_matches_direct_query(self, analyzer, scenario_system):
        metrics = analyzer.zone_metrics("qatar", *SPAN)
        direct = scenario_system.dashboard.analysis(
            AnalysisQuery(start=SPAN[0], end=SPAN[1], countries=("qatar",))
        )
        assert metrics.total_updates == direct.rows[()]

    def test_geometry_share_in_unit_interval(self, analyzer):
        metrics = analyzer.zone_metrics("france", *SPAN)
        assert 0.0 <= metrics.geometry_share <= 1.0

    def test_import_zone_less_stable_than_quiet_zone(self, analyzer):
        qatar = analyzer.zone_metrics("qatar", *SPAN)
        quiet = analyzer.zone_metrics("oceania_012", *SPAN)
        assert qatar.stability_score < quiet.stability_score

    def test_rank_zones_orders_by_score(self, analyzer):
        ranked = analyzer.rank_zones(["qatar", "france", "oceania_012"], *SPAN)
        scores = [m.stability_score for m in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rank_zones_empty_rejected(self, analyzer):
        with pytest.raises(QueryError):
            analyzer.rank_zones([], *SPAN)


class TestAnomalyDetection:
    def test_import_day_detected(self, analyzer):
        anomalies = analyzer.detect_anomalies("qatar", *SPAN)
        assert IMPORT_DAY in {a.day for a in anomalies}

    def test_vandalism_day_detected(self, analyzer):
        anomalies = analyzer.detect_anomalies("france", *SPAN)
        assert VANDAL_DAY in {a.day for a in anomalies}

    def test_planted_day_is_top_anomaly(self, analyzer):
        """Organic synthetic activity is bursty too, so instead of
        demanding zero false positives we demand the planted import is
        the strongest signal in its zone."""
        anomalies = analyzer.detect_anomalies("qatar", *SPAN)
        top = max(anomalies, key=lambda a: a.z_score)
        assert top.day == IMPORT_DAY

    def test_silent_zone_has_no_anomalies(self, analyzer, scenario_system):
        """A zone with zero updates all month triggers nothing."""
        silent = None
        for zone in scenario_system.atlas.countries:
            total = scenario_system.dashboard.analysis(
                AnalysisQuery(start=SPAN[0], end=SPAN[1], countries=(zone.name,))
            ).rows.get((), 0)
            if total == 0:
                silent = zone.name
                break
        assert silent is not None, "expected at least one silent country"
        assert analyzer.detect_anomalies(silent, *SPAN) == []

    def test_anomaly_scores_positive(self, analyzer):
        for anomaly in analyzer.detect_anomalies("qatar", *SPAN):
            assert anomaly.z_score >= 3.0
            assert anomaly.count >= 5

    def test_short_window_rejected(self, analyzer):
        with pytest.raises(QueryError):
            analyzer.detect_anomalies("qatar", date(2021, 3, 1), date(2021, 3, 3))


class TestReport:
    def test_report_mentions_zones_and_anomalies(self, analyzer):
        report = analyzer.render_report(["qatar", "france", "germany"], *SPAN)
        assert "qatar" in report
        assert "score=" in report
        assert "!!" in report  # at least one anomaly called out
        assert str(IMPORT_DAY) in report


class TestZeroVarianceBaseline:
    def test_spike_in_silent_zone_detected_with_infinite_z(
        self, scenario_system, analyzer
    ):
        """A burst in an otherwise all-zero zone must be flagged even
        though the leave-one-out std is zero (regression test: the
        detector used to skip exactly the most extreme anomalies)."""
        from repro.core.calendar import day_key
        from repro.core.cube import DataCube

        # Fabricate a silent zone with one spike day directly in a
        # scratch index to isolate the detector's math.
        import math

        from repro.core.executor import QueryExecutor
        from repro.core.hierarchy import HierarchicalIndex
        from repro.collection.records import UpdateList, UpdateRecord
        from repro.storage.disk import InMemoryDisk

        schema = scenario_system.schema
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(schema, disk, atlas=scenario_system.atlas)
        from datetime import timedelta

        spike_day = date(2021, 3, 15)
        center = scenario_system.atlas.zone("qatar").bbox.center
        day = date(2021, 3, 1)
        while day <= date(2021, 3, 31):
            rows = UpdateList()
            if day == spike_day:
                rows.extend(
                    UpdateRecord(
                        element_type="way",
                        date=day,
                        country="qatar",
                        latitude=center.lat,
                        longitude=center.lon,
                        road_type="residential",
                        update_type="create",
                        changeset_id=i + 1,
                    )
                    for i in range(40)
                )
            index.ingest_day(day, rows)
            day += timedelta(days=1)
        detector = StabilityAnalyzer(
            QueryExecutor(index), scenario_system.network_sizes
        )
        anomalies = detector.detect_anomalies("qatar", *SPAN)
        assert [a.day for a in anomalies] == [spike_day]
        assert math.isinf(anomalies[0].z_score)
