"""Tests for page stores, the simulated disk, and cube serialization."""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import day_key, month_key, week_key, year_key
from repro.core.cube import DataCube, RESOLUTION_COARSE, SparseCube, as_sparse
from repro.errors import ConfigError, PageCorruptError, PageNotFoundError
from repro.storage.disk import DirectoryDisk, InMemoryDisk
from repro.storage.serializer import (
    HEADER_SIZE,
    PAGE_VERSION_COMPRESSED,
    PAGE_VERSION_RAW,
    PAGE_VERSION_SPARSE,
    cube_page_size,
    deserialize_cube,
    page_version,
    serialize_cube,
)


class TestDiskStats:
    def test_initial_stats_zero(self):
        disk = InMemoryDisk()
        assert disk.stats.reads == 0
        assert disk.stats.writes == 0
        assert disk.stats.simulated_seconds == 0.0

    def test_read_write_counters(self):
        disk = InMemoryDisk(read_latency=0.004, write_latency=0.006)
        disk.write("a", b"xyz")
        disk.read("a")
        disk.read("a")
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_written == 3
        assert disk.stats.bytes_read == 6
        assert disk.stats.simulated_seconds == pytest.approx(0.006 + 2 * 0.004)

    def test_snapshot_delta(self):
        disk = InMemoryDisk()
        disk.write("a", b"x")
        before = disk.stats.snapshot()
        disk.read("a")
        delta = disk.stats.delta(before)
        assert delta.reads == 1
        assert delta.writes == 0

    def test_reset_stats(self):
        disk = InMemoryDisk()
        disk.write("a", b"x")
        disk.reset_stats()
        assert disk.stats.total_ios == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            InMemoryDisk(read_latency=-1)


class TestInMemoryDisk:
    def test_roundtrip(self):
        disk = InMemoryDisk()
        disk.write("cube/a", b"hello")
        assert disk.read("cube/a") == b"hello"

    def test_missing_page_raises(self):
        disk = InMemoryDisk()
        with pytest.raises(PageNotFoundError):
            disk.read("nope")

    def test_overwrite(self):
        disk = InMemoryDisk()
        disk.write("a", b"1")
        disk.write("a", b"22")
        assert disk.read("a") == b"22"

    def test_delete(self):
        disk = InMemoryDisk()
        disk.write("a", b"1")
        disk.delete("a")
        assert "a" not in disk
        with pytest.raises(PageNotFoundError):
            disk.delete("a")

    def test_list_pages_sorted_with_prefix(self):
        disk = InMemoryDisk()
        for page_id in ("b/2", "a/1", "b/1"):
            disk.write(page_id, b"x")
        assert list(disk.list_pages("b/")) == ["b/1", "b/2"]
        assert disk.page_count() == 3

    def test_stored_bytes(self):
        disk = InMemoryDisk()
        disk.write("a", b"12345")
        disk.write("b", b"1")
        assert disk.stored_bytes == 6


class TestDirectoryDisk:
    def test_roundtrip_and_persistence(self, tmp_path):
        disk = DirectoryDisk(tmp_path / "pages")
        disk.write("cubes/D2021-01-01", b"payload")
        reopened = DirectoryDisk(tmp_path / "pages")
        assert reopened.read("cubes/D2021-01-01") == b"payload"

    def test_missing_page_raises(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        with pytest.raises(PageNotFoundError):
            disk.read("ghost")

    def test_nested_ids_become_directories(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("warehouse/heap/00000001", b"x")
        assert (tmp_path / "warehouse" / "heap" / "00000001.page").exists()

    def test_list_pages(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("a/1", b"x")
        disk.write("a/2", b"x")
        disk.write("b/1", b"x")
        assert list(disk.list_pages("a/")) == ["a/1", "a/2"]

    def test_delete(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("a", b"x")
        disk.delete("a")
        assert "a" not in disk

    def test_path_traversal_rejected(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        with pytest.raises(ConfigError):
            disk.write("../evil", b"x")
        with pytest.raises(ConfigError):
            disk.write("/abs", b"x")

    def test_write_is_atomic_replace(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("a", b"one")
        disk.write("a", b"two")
        assert disk.read("a") == b"two"
        assert not list((tmp_path).rglob("*.tmp"))

    def test_stored_bytes(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("a", b"12345")
        assert disk.stored_bytes == 5


class TestSerializer:
    def _cube(self, schema, key=None, resolution="full"):
        cube = DataCube(
            schema=schema,
            key=key or day_key(date(2021, 3, 5)),
            resolution=resolution,
        )
        cube.record("way", "germany", "residential", "create")
        cube.record("node", "qatar", "primary", "geometry")
        return cube

    def test_roundtrip(self, tiny_schema):
        cube = self._cube(tiny_schema)
        assert deserialize_cube(serialize_cube(cube), tiny_schema) == cube

    @pytest.mark.parametrize(
        "key",
        [
            day_key(date(2021, 3, 5)),
            week_key(2021, 3, 2),
            month_key(2021, 3),
            year_key(2021),
        ],
    )
    def test_roundtrip_all_levels(self, tiny_schema, key):
        cube = DataCube(schema=tiny_schema, key=key)
        assert deserialize_cube(serialize_cube(cube), tiny_schema).key == key

    def test_roundtrip_preserves_resolution(self, tiny_schema):
        cube = self._cube(tiny_schema, resolution=RESOLUTION_COARSE)
        assert (
            deserialize_cube(serialize_cube(cube), tiny_schema).resolution
            == RESOLUTION_COARSE
        )

    def test_page_size_formula(self, tiny_schema):
        cube = self._cube(tiny_schema)
        data = serialize_cube(cube)
        assert len(data) == cube_page_size(tiny_schema)
        assert len(data) == HEADER_SIZE + tiny_schema.cell_count * 8

    def test_paper_scale_page_is_about_4mb(self):
        from repro.core.dimensions import paper_scale_schema

        size = cube_page_size(paper_scale_schema())
        assert size == pytest.approx(540_000 * 8, rel=0.01)

    def test_bad_magic_rejected(self, tiny_schema):
        data = bytearray(serialize_cube(self._cube(tiny_schema)))
        data[:4] = b"NOPE"
        with pytest.raises(PageCorruptError, match="magic"):
            deserialize_cube(bytes(data), tiny_schema)

    def test_truncated_page_rejected(self, tiny_schema):
        data = serialize_cube(self._cube(tiny_schema))
        with pytest.raises(PageCorruptError):
            deserialize_cube(data[: HEADER_SIZE - 1], tiny_schema)

    def test_truncated_payload_rejected(self, tiny_schema):
        data = serialize_cube(self._cube(tiny_schema))
        with pytest.raises(PageCorruptError, match="payload"):
            deserialize_cube(data[:-8], tiny_schema)

    def test_flipped_bit_fails_checksum(self, tiny_schema):
        data = bytearray(serialize_cube(self._cube(tiny_schema)))
        data[HEADER_SIZE + 3] ^= 0xFF
        with pytest.raises(PageCorruptError, match="checksum"):
            deserialize_cube(bytes(data), tiny_schema)

    def test_schema_mismatch_rejected(self, tiny_schema):
        from repro.core.dimensions import default_schema

        other = default_schema(["only"], road_types=2)
        data = serialize_cube(self._cube(tiny_schema))
        with pytest.raises(PageCorruptError, match="shape"):
            deserialize_cube(data, other)

    def test_compressed_roundtrip(self, tiny_schema):
        cube = self._cube(tiny_schema)
        data = serialize_cube(cube, compress=True)
        assert deserialize_cube(data, tiny_schema) == cube

    def test_compressed_page_is_smaller_for_sparse_cube(self, tiny_schema):
        cube = self._cube(tiny_schema)  # 3 nonzero cells out of 288
        raw = serialize_cube(cube, compress=False)
        packed = serialize_cube(cube, compress=True)
        assert len(packed) < len(raw) / 2

    def test_compressed_corruption_detected(self, tiny_schema):
        data = bytearray(serialize_cube(self._cube(tiny_schema), compress=True))
        data[HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(PageCorruptError):
            deserialize_cube(bytes(data), tiny_schema)

    def test_compressed_checksum_validates_raw_payload(self, tiny_schema):
        """The CRC covers the uncompressed cells, so decompression that
        'succeeds' with wrong content still fails verification."""
        cube = self._cube(tiny_schema)
        import zlib as _zlib

        other = cube.copy()
        other.record("way", "qatar", "service", "delete")
        data = bytearray(serialize_cube(cube, compress=True))
        # Swap in another cube's compressed payload under cube's header.
        import numpy as _np

        foreign = _zlib.compress(
            _np.ascontiguousarray(other.counts, dtype="<i8").tobytes()
        )
        data = bytes(data[:HEADER_SIZE]) + foreign
        with pytest.raises(PageCorruptError, match="checksum"):
            deserialize_cube(data, tiny_schema)

    def test_index_reads_mixed_compression(self, tiny_schema):
        """An index can read raw pages written before compression was
        enabled and compressed ones after — format is self-describing."""
        from repro.core.hierarchy import HierarchicalIndex
        from repro.storage.disk import InMemoryDisk

        disk = InMemoryDisk(read_latency=0, write_latency=0)
        raw_index = HierarchicalIndex(tiny_schema, disk, compress=False)
        cube_a = self._cube(tiny_schema, key=day_key(date(2021, 1, 1)))
        raw_index.put(cube_a)
        packed_index = HierarchicalIndex(tiny_schema, disk, compress=True)
        cube_b = self._cube(tiny_schema, key=day_key(date(2021, 1, 2)))
        packed_index.put(cube_b)
        assert packed_index.get(cube_a.key) == cube_a
        assert packed_index.get(cube_b.key) == cube_b

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30))
    @settings(max_examples=25)
    def test_roundtrip_arbitrary_counts(self, values):
        from repro.core.dimensions import default_schema

        tiny_schema = default_schema(
            ["united_states", "germany", "qatar"], road_types=8
        )
        cube = DataCube(schema=tiny_schema, key=day_key(date(2021, 1, 2)))
        flat = cube.counts.reshape(-1)
        for index, value in enumerate(values):
            flat[index % flat.size] = value
        restored = deserialize_cube(serialize_cube(cube), tiny_schema)
        assert np.array_equal(restored.counts, cube.counts)


class TestRawPageZeroCopy:
    """The v1 fast path hands the cube a read-only view of the page."""

    def _page(self, schema):
        cube = DataCube(schema=schema, key=day_key(date(2021, 3, 5)))
        cube.record("way", "germany", "residential", "create")
        return cube, serialize_cube(cube, version=PAGE_VERSION_RAW)

    def test_counts_share_page_memory(self, tiny_schema):
        _, data = self._page(tiny_schema)
        restored = deserialize_cube(data, tiny_schema)
        assert np.shares_memory(
            restored.counts, np.frombuffer(data, dtype=np.uint8)
        )
        assert not restored.counts.flags.writeable

    def test_mutation_copies_instead_of_raising(self, tiny_schema):
        cube, data = self._page(tiny_schema)
        restored = deserialize_cube(data, tiny_schema)
        restored.record("node", "qatar", "primary", "delete")
        assert restored.total == cube.total + 1
        # The original page bytes are untouched (copy-on-write).
        assert deserialize_cube(data, tiny_schema) == cube

    def test_add_into_zero_copy_cube(self, tiny_schema):
        cube, data = self._page(tiny_schema)
        restored = deserialize_cube(data, tiny_schema)
        restored.add(cube)
        assert restored.total == 2 * cube.total


class TestSparsePageFormat:
    def _cube(self, schema, sparse=True, key=None, resolution="full"):
        cls = SparseCube if sparse else DataCube
        cube = cls(schema=schema, key=key or day_key(date(2021, 3, 5)), resolution=resolution)
        cube.record("way", "germany", "residential", "create")
        cube.record("way", "germany", "residential", "create")
        cube.record("node", "qatar", "primary", "geometry")
        return cube

    def test_roundtrip_stays_sparse(self, tiny_schema):
        cube = self._cube(tiny_schema)
        data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        assert page_version(data) == PAGE_VERSION_SPARSE
        restored = deserialize_cube(data, tiny_schema)
        assert isinstance(restored, SparseCube)
        assert restored == cube

    def test_dense_cube_serializes_to_v3(self, tiny_schema):
        cube = self._cube(tiny_schema, sparse=False)
        data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        assert deserialize_cube(data, tiny_schema) == cube

    def test_v3_page_much_smaller_than_raw(self, tiny_schema):
        cube = self._cube(tiny_schema)
        raw = serialize_cube(cube, version=PAGE_VERSION_RAW)
        packed = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        assert len(packed) < len(raw) / 5

    def test_empty_cube_roundtrip(self, tiny_schema):
        cube = SparseCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        restored = deserialize_cube(data, tiny_schema)
        assert restored.nnz == 0
        assert restored == cube

    def test_wide_values_fall_back_to_raw(self, tiny_schema):
        counts = (
            np.arange(tiny_schema.cell_count, dtype=np.int64) * (1 << 40) + 1
        ).reshape(tiny_schema.shape)
        cube = DataCube(
            schema=tiny_schema, key=day_key(date(2021, 3, 5)), counts=counts
        )
        data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        assert page_version(data) == PAGE_VERSION_RAW  # encoded >= raw
        assert deserialize_cube(data, tiny_schema) == cube

    def test_roundtrip_preserves_resolution(self, tiny_schema):
        cube = self._cube(tiny_schema, resolution=RESOLUTION_COARSE)
        restored = deserialize_cube(
            serialize_cube(cube, version=PAGE_VERSION_SPARSE), tiny_schema
        )
        assert restored.resolution == RESOLUTION_COARSE

    @pytest.mark.parametrize(
        "key",
        [
            day_key(date(2021, 3, 5)),
            week_key(2021, 3, 2),
            month_key(2021, 3),
            year_key(2021),
        ],
    )
    def test_roundtrip_all_levels(self, tiny_schema, key):
        cube = SparseCube(schema=tiny_schema, key=key)
        cube.record("way", "germany", "residential", "create")
        restored = deserialize_cube(
            serialize_cube(cube, version=PAGE_VERSION_SPARSE), tiny_schema
        )
        assert restored.key == key

    def test_header_bit_flip_detected_before_decode(self, tiny_schema):
        """v3's CRC covers the header too: corrupting the temporal-key
        fields must raise PageCorruptError, not a calendar error."""
        cube = self._cube(tiny_schema)
        data = bytearray(serialize_cube(cube, version=PAGE_VERSION_SPARSE))
        data[8] ^= 0xFF  # inside the header's key fields
        with pytest.raises(PageCorruptError):
            deserialize_cube(bytes(data), tiny_schema)

    def test_payload_bit_flip_detected(self, tiny_schema):
        cube = self._cube(tiny_schema)
        data = bytearray(serialize_cube(cube, version=PAGE_VERSION_SPARSE))
        data[HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(PageCorruptError):
            deserialize_cube(bytes(data), tiny_schema)

    def test_truncated_page_detected(self, tiny_schema):
        cube = self._cube(tiny_schema)
        data = serialize_cube(cube, version=PAGE_VERSION_SPARSE)
        with pytest.raises(PageCorruptError):
            deserialize_cube(data[:-1], tiny_schema)

    def test_unknown_version_rejected(self, tiny_schema):
        with pytest.raises(ConfigError):
            serialize_cube(self._cube(tiny_schema), version=9)

    def test_compress_conflicts_with_other_versions(self, tiny_schema):
        with pytest.raises(ConfigError):
            serialize_cube(
                self._cube(tiny_schema),
                compress=True,
                version=PAGE_VERSION_SPARSE,
            )

    def test_index_reads_mixed_versions(self, tiny_schema):
        """v1, v2, and v3 pages coexist in one store — the format is
        self-describing, so upgrading page_version needs no migration."""
        from repro.core.hierarchy import HierarchicalIndex

        disk = InMemoryDisk(read_latency=0, write_latency=0)
        cubes = {}
        for version, day in (
            (PAGE_VERSION_RAW, 1),
            (PAGE_VERSION_COMPRESSED, 2),
            (PAGE_VERSION_SPARSE, 3),
        ):
            index = HierarchicalIndex(tiny_schema, disk, page_version=version)
            cube = self._cube(
                tiny_schema, sparse=False, key=day_key(date(2021, 1, day))
            )
            index.put(cube)
            cubes[cube.key] = cube
        reader = HierarchicalIndex(
            tiny_schema, disk, page_version=PAGE_VERSION_SPARSE
        )
        for key, cube in cubes.items():
            assert reader.get(key) == cube

    def test_sparse_index_round_trip(self, tiny_schema):
        from repro.core.hierarchy import HierarchicalIndex

        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(
            tiny_schema, disk, page_version=PAGE_VERSION_SPARSE, sparse=True
        )
        cube = self._cube(tiny_schema)
        index.put(cube)
        restored = index.get(cube.key)
        assert isinstance(restored, SparseCube)
        assert restored == cube
