"""Tests for the command-line interface (simulate → ingest → query)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def deployment_root(tmp_path_factory):
    """A small simulated + ingested deployment on disk."""
    root = tmp_path_factory.mktemp("cli-deploy")
    assert (
        main(
            [
                "simulate",
                "--root",
                str(root),
                "--start",
                "2021-01-01",
                "--end",
                "2021-01-14",
                "--seed",
                "5",
            ]
        )
        == 0
    )
    assert main(["ingest", "--root", str(root)]) == 0
    return root


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_present(self):
        parser = build_parser()
        for command in (
            "simulate",
            "ingest",
            "info",
            "query",
            "samples",
            "stats",
            "serve",
        ):
            args = parser.parse_args(
                [command, "--root", "/tmp/x"]
                + (["--start", "2021-01-01", "--end", "2021-01-02"] if command == "simulate" else [])
                + (["--sql", "x"] if command == "query" else [])
                + (["--zone", "germany"] if command == "samples" else [])
            )
            assert args.command == command


class TestCommands:
    def test_simulate_publishes_feeds(self, deployment_root):
        state = deployment_root / "feeds" / "replication" / "day" / "state.txt"
        assert state.exists()
        assert "sequenceNumber=13" in state.read_text()

    def test_ingest_is_incremental(self, deployment_root, capsys):
        assert main(["ingest", "--root", str(deployment_root)]) == 0
        out = capsys.readouterr().out
        assert "ingested 0 days" in out

    def test_info_reports_coverage(self, deployment_root, capsys):
        assert main(["info", "--root", str(deployment_root)]) == 0
        out = capsys.readouterr().out
        assert "2021-01-01 .. 2021-01-14" in out
        assert "day" in out
        assert "warehouse" in out

    def test_query_table(self, deployment_root, capsys):
        sql = (
            "SELECT U.ElementType, COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-14 "
            "GROUP BY U.ElementType"
        )
        assert main(["query", "--root", str(deployment_root), "--sql", sql]) == 0
        out = capsys.readouterr().out
        assert "element_type" in out
        assert "way" in out
        assert "ms modeled" in out

    def test_query_bar_chart(self, deployment_root, capsys):
        sql = (
            "SELECT U.Country, COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-14 "
            "GROUP BY U.Country"
        )
        assert (
            main(
                ["query", "--root", str(deployment_root), "--sql", sql, "--chart", "bar"]
            )
            == 0
        )
        assert "#" in capsys.readouterr().out

    def test_query_with_after_uses_coverage_end(self, deployment_root, capsys):
        sql = (
            "SELECT COUNT(*) FROM UpdateList U WHERE U.Date AFTER 2021-01-10"
        )
        assert main(["query", "--root", str(deployment_root), "--sql", sql]) == 0
        assert "value" in capsys.readouterr().out

    def test_query_bad_sql_is_error_exit(self, deployment_root, capsys):
        assert (
            main(["query", "--root", str(deployment_root), "--sql", "DROP TABLE"]) == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_samples(self, deployment_root, capsys):
        assert (
            main(["samples", "--root", str(deployment_root), "--zone", "germany", "-n", "3"])
            == 0
        )
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) <= 3
        for line in lines:
            assert line.split("\t")[2] == "germany"

    def test_samples_unknown_zone_is_error(self, deployment_root, capsys):
        assert (
            main(["samples", "--root", str(deployment_root), "--zone", "atlantis"]) == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_query_trace_prints_phase_breakdown(self, deployment_root, capsys):
        sql = (
            "SELECT U.ElementType, COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-14 "
            "GROUP BY U.ElementType"
        )
        assert (
            main(["query", "--root", str(deployment_root), "--sql", sql, "--trace"])
            == 0
        )
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "phase1.plan" in out
        assert "phase2.aggregate" in out


class TestStatsCommand:
    SQL = (
        "SELECT U.Country, COUNT(*) FROM UpdateList U "
        "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-14 "
        "GROUP BY U.Country"
    )

    def test_table_lists_core_series(self, deployment_root, capsys):
        assert (
            main(["stats", "--root", str(deployment_root), "--sql", self.SQL]) == 0
        )
        out = capsys.readouterr().out
        assert "trace:" in out
        assert "rased_queries_total" in out
        assert "rased_disk_reads_total" in out
        assert "rased_query_wall_seconds" in out

    def test_prometheus_format(self, deployment_root, capsys):
        assert (
            main(
                [
                    "stats",
                    "--root", str(deployment_root),
                    "--sql", self.SQL,
                    "--format", "prometheus",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE rased_queries_total counter" in out
        assert "# TYPE rased_query_wall_seconds summary" in out
        assert 'rased_query_wall_seconds{quantile="0.5"}' in out

    def test_json_format(self, deployment_root, capsys):
        import json

        assert (
            main(
                [
                    "stats",
                    "--root", str(deployment_root),
                    "--format", "json",
                ]
            )
            == 0
        )
        snapshot = json.loads(capsys.readouterr().out)
        assert "counters" in snapshot and "histograms" in snapshot
        # Even without --sql, warming the cache touches the disk.
        assert "rased_disk_reads_total" in snapshot["counters"]


class TestRebuildCommand:
    def test_simulate_ingest_rebuild_cycle(self, tmp_path, capsys):
        root = tmp_path / "deploy"
        history = tmp_path / "history.osm"
        assert (
            main(
                [
                    "simulate",
                    "--root", str(root),
                    "--start", "2021-02-01",
                    "--end", "2021-02-28",
                    "--seed", "9",
                    "--history-out", str(history),
                ]
            )
            == 0
        )
        assert history.exists()
        assert main(["ingest", "--root", str(root)]) == 0
        capsys.readouterr()

        # Before the rebuild, update types are coarse (no metadata).
        sql = (
            "SELECT U.UpdateType, COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-02-01 AND 2021-02-28 "
            "GROUP BY U.UpdateType"
        )
        assert main(["query", "--root", str(root), "--sql", sql]) == 0
        before = capsys.readouterr().out
        assert "metadata" not in before

        assert (
            main(
                [
                    "rebuild",
                    "--root", str(root),
                    "--history", str(history),
                    "--month", "2021-02",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "rebuilt M2021-02" in out

        assert main(["query", "--root", str(root), "--sql", sql]) == 0
        after = capsys.readouterr().out
        assert "metadata" in after
