"""Tests for the temporal hierarchy: keys, covers, maintenance triggers."""

from __future__ import annotations

from datetime import date, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import (
    Level,
    TemporalKey,
    completed_units,
    cover_range,
    day_key,
    iter_days,
    keys_in_range,
    month_key,
    series_period_start,
    series_periods,
    week_key,
    week_key_for,
    year_key,
)
from repro.errors import CalendarError

DATES = st.dates(min_value=date(2004, 1, 1), max_value=date(2030, 12, 31))


class TestTemporalKeyValidation:
    def test_year_key_rejects_month(self):
        with pytest.raises(CalendarError):
            TemporalKey(Level.YEAR, 2021, month=3)

    def test_month_key_rejects_ordinal(self):
        with pytest.raises(CalendarError):
            TemporalKey(Level.MONTH, 2021, 3, ordinal=1)

    def test_month_out_of_range(self):
        with pytest.raises(CalendarError):
            month_key(2021, 13)

    def test_week_ordinal_out_of_range(self):
        with pytest.raises(CalendarError):
            week_key(2021, 3, 4)

    def test_day_ordinal_out_of_range(self):
        with pytest.raises(CalendarError):
            TemporalKey(Level.DAY, 2021, 2, 29)  # 2021 not a leap year

    def test_leap_day_accepted(self):
        key = TemporalKey(Level.DAY, 2020, 2, 29)
        assert key.start == date(2020, 2, 29)


class TestSpans:
    def test_year_span(self):
        key = year_key(2021)
        assert key.start == date(2021, 1, 1)
        assert key.end == date(2021, 12, 31)
        assert key.day_count == 365

    def test_leap_year_span(self):
        assert year_key(2020).day_count == 366

    def test_month_span(self):
        key = month_key(2021, 2)
        assert key.day_count == 28
        assert key.end == date(2021, 2, 28)

    def test_week_spans_are_month_aligned(self):
        # Week 0 of any month covers days 1-7.
        key = week_key(2022, 1, 0)
        assert key.start == date(2022, 1, 1)
        assert key.end == date(2022, 1, 7)

    def test_last_week_ends_day_28(self):
        key = week_key(2022, 1, 3)
        assert key.start == date(2022, 1, 22)
        assert key.end == date(2022, 1, 28)

    def test_day_span(self):
        key = day_key(date(2021, 7, 4))
        assert key.start == key.end == date(2021, 7, 4)
        assert key.day_count == 1

    def test_str_representations(self):
        assert str(year_key(2021)) == "Y2021"
        assert str(month_key(2021, 3)) == "M2021-03"
        assert str(week_key(2021, 3, 2)) == "W2021-03.2"
        assert str(day_key(date(2021, 3, 5))) == "D2021-03-05"


class TestHierarchyNavigation:
    def test_day_parent_is_week_for_days_1_to_28(self):
        assert day_key(date(2021, 3, 14)).parent() == week_key(2021, 3, 1)

    def test_day_29_parents_to_month(self):
        assert day_key(date(2021, 3, 29)).parent() == month_key(2021, 3)

    def test_week_parent_is_month(self):
        assert week_key(2021, 3, 2).parent() == month_key(2021, 3)

    def test_month_parent_is_year(self):
        assert month_key(2021, 3).parent() == year_key(2021)

    def test_year_has_no_parent(self):
        assert year_key(2021).parent() is None

    def test_year_children_are_12_months(self):
        children = year_key(2021).children()
        assert len(children) == 12
        assert children[0] == month_key(2021, 1)
        assert children[-1] == month_key(2021, 12)

    def test_month_children_are_4_weeks_plus_leftovers(self):
        children = month_key(2021, 1).children()  # 31 days
        weeks = [c for c in children if c.level is Level.WEEK]
        days = [c for c in children if c.level is Level.DAY]
        assert len(weeks) == 4
        assert [d.ordinal for d in days] == [29, 30, 31]

    def test_february_non_leap_has_no_leftover_days(self):
        children = month_key(2021, 2).children()
        assert all(c.level is Level.WEEK for c in children)

    def test_february_leap_has_one_leftover_day(self):
        days = [c for c in month_key(2020, 2).children() if c.level is Level.DAY]
        assert [d.ordinal for d in days] == [29]

    def test_week_children_are_7_days(self):
        children = week_key(2021, 3, 1).children()
        assert len(children) == 7
        assert children[0] == day_key(date(2021, 3, 8))
        assert children[-1] == day_key(date(2021, 3, 14))

    def test_week_key_for_day_29_is_none(self):
        assert week_key_for(date(2021, 3, 29)) is None

    def test_descend_to_days_matches_day_count(self):
        key = month_key(2021, 6)
        assert len(key.descend_to_days()) == key.day_count

    @given(DATES)
    def test_parent_always_covers_child(self, d):
        key = day_key(d)
        while (parent := key.parent()) is not None:
            assert parent.covers(key)
            assert parent.contains(d)
            key = parent

    @given(DATES)
    def test_children_partition_parent(self, d):
        """Every non-day key's children tile its span exactly."""
        key = day_key(d).parent()
        while key is not None:
            children = key.children()
            days = []
            for child in children:
                days.extend(iter_days(child.start, child.end))
            assert sorted(days) == list(iter_days(key.start, key.end))
            key = key.parent()


class TestCoverRange:
    def test_paper_example_window(self):
        """Jan 1 - Feb 15, 2022: month + 2 weeks + day = 4 aligned units."""
        keys = cover_range(date(2022, 1, 1), date(2022, 2, 15))
        assert [str(k) for k in keys] == [
            "M2022-01",
            "W2022-02.0",
            "W2022-02.1",
            "D2022-02-15",
        ]

    def test_single_day(self):
        assert cover_range(date(2021, 5, 17), date(2021, 5, 17)) == [
            day_key(date(2021, 5, 17))
        ]

    def test_full_year_is_one_unit(self):
        assert cover_range(date(2021, 1, 1), date(2021, 12, 31)) == [year_key(2021)]

    def test_rejects_inverted_range(self):
        with pytest.raises(CalendarError):
            cover_range(date(2021, 2, 1), date(2021, 1, 1))

    def test_mid_week_start_uses_days(self):
        keys = cover_range(date(2021, 3, 3), date(2021, 3, 7))
        assert all(k.level is Level.DAY for k in keys)
        assert len(keys) == 5

    @given(st.tuples(DATES, DATES).map(sorted))
    @settings(max_examples=60)
    def test_cover_is_exact_disjoint_partition(self, bounds):
        start, end = bounds
        keys = cover_range(start, end)
        covered = []
        for key in keys:
            covered.extend(iter_days(key.start, key.end))
        assert covered == list(iter_days(start, end))

    @given(st.tuples(DATES, DATES).map(sorted))
    @settings(max_examples=60)
    def test_cover_units_are_maximal(self, bounds):
        """No two adjacent same-parent sibling groups are left unmerged:
        the greedy cover never uses more keys than days."""
        start, end = bounds
        keys = cover_range(start, end)
        assert len(keys) <= (end - start).days + 1
        # Keys are sorted and non-overlapping.
        for left, right in zip(keys, keys[1:]):
            assert left.end < right.start


class TestCompletedUnits:
    def test_midweek_day_completes_nothing(self):
        assert completed_units(date(2021, 3, 3)) == []

    def test_day_7_completes_first_week(self):
        assert completed_units(date(2021, 3, 7)) == [week_key(2021, 3, 0)]

    def test_month_end_without_week(self):
        # March 31 ends the month but not a week (day 31 has no week).
        assert completed_units(date(2021, 3, 31)) == [month_key(2021, 3)]

    def test_feb_28_completes_week_and_month(self):
        assert completed_units(date(2021, 2, 28)) == [
            week_key(2021, 2, 3),
            month_key(2021, 2),
        ]

    def test_year_end_completes_month_and_year(self):
        assert completed_units(date(2021, 12, 31)) == [
            month_key(2021, 12),
            year_key(2021),
        ]

    @given(DATES)
    def test_completed_units_end_on_that_day(self, d):
        for key in completed_units(d):
            assert key.end == d


class TestSeriesPeriods:
    def test_day_periods_are_every_day(self):
        periods = series_periods(date(2021, 3, 1), date(2021, 3, 5), Level.DAY)
        assert len(periods) == 5
        assert all(a == b for a, b in periods)

    def test_week_periods_cover_leftover_days(self):
        periods = series_periods(date(2021, 1, 1), date(2021, 1, 31), Level.WEEK)
        # 4 weeks + the 29-31 leftover period.
        assert len(periods) == 5
        assert periods[-1] == (date(2021, 1, 29), date(2021, 1, 31))

    def test_periods_are_clipped_to_range(self):
        periods = series_periods(date(2021, 1, 5), date(2021, 1, 10), Level.WEEK)
        assert periods == [
            (date(2021, 1, 5), date(2021, 1, 7)),
            (date(2021, 1, 8), date(2021, 1, 10)),
        ]

    def test_month_periods(self):
        periods = series_periods(date(2021, 1, 15), date(2021, 3, 15), Level.MONTH)
        assert [p[0] for p in periods] == [
            date(2021, 1, 15),
            date(2021, 2, 1),
            date(2021, 3, 1),
        ]

    def test_year_periods(self):
        periods = series_periods(date(2020, 6, 1), date(2022, 2, 1), Level.YEAR)
        assert len(periods) == 3

    @given(st.tuples(DATES, DATES).map(sorted), st.sampled_from(list(Level)))
    @settings(max_examples=60)
    def test_periods_tile_range_completely(self, bounds, level):
        start, end = bounds
        periods = series_periods(start, end, level)
        days = []
        for period_start, period_end in periods:
            days.extend(iter_days(period_start, period_end))
        assert days == list(iter_days(start, end))

    @given(DATES, st.sampled_from(list(Level)))
    def test_period_start_is_idempotent(self, d, level):
        first = series_period_start(d, level)
        assert series_period_start(first, level) == first
        assert first <= d


class TestKeysInRange:
    def test_day_level(self):
        keys = keys_in_range(date(2021, 3, 30), date(2021, 4, 2), Level.DAY)
        assert len(keys) == 4

    def test_month_level_intersecting(self):
        keys = keys_in_range(date(2021, 1, 15), date(2021, 3, 2), Level.MONTH)
        assert keys == [month_key(2021, 1), month_key(2021, 2), month_key(2021, 3)]

    def test_year_level(self):
        keys = keys_in_range(date(2020, 6, 1), date(2021, 6, 1), Level.YEAR)
        assert keys == [year_key(2020), year_key(2021)]

    def test_week_level_excludes_nonintersecting(self):
        keys = keys_in_range(date(2021, 1, 1), date(2021, 1, 7), Level.WEEK)
        assert keys == [week_key(2021, 1, 0)]

    def test_rejects_inverted(self):
        with pytest.raises(CalendarError):
            keys_in_range(date(2021, 2, 1), date(2021, 1, 1), Level.DAY)


class TestIterDays:
    def test_inclusive_bounds(self):
        days = list(iter_days(date(2021, 1, 30), date(2021, 2, 2)))
        assert days[0] == date(2021, 1, 30)
        assert days[-1] == date(2021, 2, 2)
        assert len(days) == 4

    def test_single_day(self):
        assert list(iter_days(date(2021, 1, 1), date(2021, 1, 1))) == [date(2021, 1, 1)]

    def test_rejects_inverted(self):
        with pytest.raises(CalendarError):
            list(iter_days(date(2021, 1, 2), date(2021, 1, 1)))
