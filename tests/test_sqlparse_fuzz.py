"""Fuzzing the paper-dialect SQL parser.

The parser sits on the HTTP edge (``POST /analysis/sql``), so its error
contract is absolute: for *any* input string, :func:`parse_sql` either
returns a valid :class:`AnalysisQuery` or raises :class:`QueryError`.
Nothing else — no raw ``ValueError`` from a date literal, no
``IndexError`` from a mangled bracket, no hang.

Three seeded generators exercise that contract:

* random mutations of valid statements (the inputs most likely to get
  deep into the parser before failing);
* unstructured garbage over the dialect's alphabet;
* targeted calendar-invalid dates (shapes the grammar's
  ``\\d{4}-\\d{2}-\\d{2}`` accepts but ``date.fromisoformat`` does not —
  a real crash this suite found).

Every *accepted* string must additionally round-trip through
:mod:`repro.baseline.sqlgen`: rendering the parsed query and parsing it
again reaches a fixed point after one normalization pass (the first
render may canonicalize creative-but-accepted value spellings).

Everything is driven by ``random.Random(seed)`` — a failure reproduces
from the seed printed in the assertion message.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

import pytest

from repro.baseline.sqlgen import to_sql
from repro.baseline.sqlparse import parse_sql
from repro.errors import QueryError, RasedError

pytestmark = pytest.mark.fuzz

_DEFAULT_END = date(2021, 12, 31)

_COUNTRIES = ["Germany", "Qatar", "UnitedStates", "france", "south_korea", "USA"]
_ROADS = ["Residential", "Primary", "service", "track"]
_UPDATES = ["New", "Update", "Delete", "MetadataUpdate", "create", "geometry"]
_ELEMENTS = ["Node", "Way", "Relation", "node", "way", "relation"]
_ATTRS = ["U.ElementType", "U.Country", "U.RoadType", "U.UpdateType"]
_GROUPABLE = _ATTRS + ["U.Date"]

#: Characters a mutation may splice in: the dialect's own alphabet plus
#: the structural characters most likely to confuse the grammar.
_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "[](),.;=*'\"-_ \t\n"
)

#: Whole tokens worth splicing in — keyword collisions cut deeper than
#: single-character noise.
_TOKENS = [
    "SELECT", "FROM", "WHERE", "AND", "BETWEEN", "AFTER", "IN",
    "GROUP BY", "COUNT(*)", "Percentage(*)", "UpdateList", "U.Date",
    "2021-01-01", "2021-99-99", "[", "]", ";", "= =",
]


def _random_date(rng: random.Random) -> str:
    day = date(2016, 1, 1) + timedelta(days=rng.randrange(0, 2100))
    return day.isoformat()


def _valid_sql(rng: random.Random) -> str:
    """One random, well-formed statement in the paper's dialect."""
    group = rng.sample(_GROUPABLE, k=rng.randrange(0, 3))
    metric = rng.choice(["COUNT(*)", "Percentage(*)"])
    select = ", ".join([*group, metric])

    d1, d2 = sorted(_random_date(rng) for _ in range(2))
    if rng.random() < 0.25:
        date_pred = f"U.Date AFTER {d1}"
    else:
        date_pred = f"U.Date BETWEEN {d1} AND {d2}"
    conditions = [date_pred]
    for attr, pool in [
        ("U.Country", _COUNTRIES),
        ("U.RoadType", _ROADS),
        ("U.UpdateType", _UPDATES),
        ("U.ElementType", _ELEMENTS),
    ]:
        if rng.random() < 0.4:
            values = rng.sample(pool, k=rng.randrange(1, 3))
            if len(values) == 1 and rng.random() < 0.5:
                conditions.append(f"{attr} = {values[0]}")
            else:
                conditions.append(f"{attr} IN [{', '.join(values)}]")

    sql = f"SELECT {select} FROM UpdateList U WHERE {' AND '.join(conditions)}"
    if group:
        sql += " GROUP BY " + ", ".join(group)
    if rng.random() < 0.2:
        sql += ";"
    return sql


def _mutate(rng: random.Random, text: str, edits: int | None = None) -> str:
    """Apply random edits: char noise, token splices, cuts, swaps."""
    if edits is None:
        edits = rng.randrange(1, 5)
    for _ in range(edits):
        if not text:
            text = rng.choice(_TOKENS)
            continue
        position = rng.randrange(len(text) + 1)
        mutation = rng.randrange(6)
        if mutation == 0:  # insert a character
            text = text[:position] + rng.choice(_ALPHABET) + text[position:]
        elif mutation == 1:  # delete a character
            text = text[: max(position - 1, 0)] + text[position:]
        elif mutation == 2:  # replace a character
            if position < len(text):
                text = text[:position] + rng.choice(_ALPHABET) + text[position + 1:]
        elif mutation == 3:  # splice a whole token
            text = text[:position] + " " + rng.choice(_TOKENS) + " " + text[position:]
        elif mutation == 4:  # truncate
            text = text[:position]
        else:  # swap two spans
            other = rng.randrange(len(text) + 1)
            lo, hi = sorted((position, other))
            text = text[:lo] + text[hi:] + text[lo:hi]
    return text


def _garbage(rng: random.Random) -> str:
    return "".join(
        rng.choice(_ALPHABET) for _ in range(rng.randrange(0, 160))
    )


def _assert_contract(sql: str, seed: int) -> object | None:
    """parse_sql(sql) returns a query or raises QueryError — nothing else.

    Returns the parsed query when accepted, ``None`` when rejected.
    """
    try:
        return parse_sql(sql, default_end=_DEFAULT_END)
    except QueryError as exc:
        # Typed rejection: the one allowed failure mode.  It must also
        # be a RasedError so the HTTP layer's handler maps it to 400.
        assert isinstance(exc, RasedError), (seed, sql)
        return None
    except Exception as exc:  # pragma: no cover - contract violation
        raise AssertionError(
            f"parse_sql leaked {type(exc).__name__}: {exc!r}\n"
            f"seed={seed} sql={sql!r}"
        ) from exc


class TestParserNeverCrashes:
    @pytest.mark.parametrize("seed", range(40))
    def test_mutated_valid_statements(self, seed):
        """Mutations of well-formed SQL never escape the error contract."""
        rng = random.Random(seed)
        for _ in range(40):
            _assert_contract(_mutate(rng, _valid_sql(rng)), seed)

    @pytest.mark.parametrize("seed", range(40))
    def test_unstructured_garbage(self, seed):
        rng = random.Random(1_000_000 + seed)
        for _ in range(40):
            _assert_contract(_garbage(rng), seed)

    def test_generator_actually_produces_valid_statements(self):
        """Sanity: the un-mutated generator parses cleanly, so the
        mutation fuzz really starts from deep inside the grammar."""
        rng = random.Random(7)
        for _ in range(100):
            assert parse_sql(_valid_sql(rng), default_end=_DEFAULT_END)

    @pytest.mark.parametrize(
        "literal",
        ["2021-99-99", "2021-02-30", "2021-00-01", "0000-01-01", "2021-13-01"],
    )
    def test_calendar_invalid_dates_are_typed_errors(self, literal):
        """Shapes matching \\d{4}-\\d{2}-\\d{2} but not the calendar must
        reject with QueryError, not leak date.fromisoformat's ValueError."""
        for sql in (
            f"SELECT COUNT(*) FROM UpdateList U "
            f"WHERE U.Date BETWEEN {literal} AND 2021-12-31",
            f"SELECT COUNT(*) FROM UpdateList U "
            f"WHERE U.Date BETWEEN 2021-01-01 AND {literal}",
            f"SELECT COUNT(*) FROM UpdateList U WHERE U.Date AFTER {literal}",
        ):
            with pytest.raises(QueryError, match="date"):
                parse_sql(sql, default_end=_DEFAULT_END)


class TestAcceptedStatementsRoundTrip:
    @pytest.mark.parametrize("seed", range(30))
    def test_accepted_mutants_reach_a_render_fixed_point(self, seed):
        """Any accepted string — however mangled — renders to SQL that
        parses back, and the render stabilizes after one pass.

        The first render may canonicalize an odd-but-accepted value
        spelling (``a_1`` -> ``A1``), so the strong equality is asserted
        between the first render's parse and the second render.
        """
        rng = random.Random(2_000_000 + seed)
        accepted = 0
        for _ in range(60):
            # Gentle edits (0-2) so a useful fraction stays parseable;
            # the heavy mutation budget lives in the never-crash tests.
            sql = _mutate(rng, _valid_sql(rng), edits=rng.randrange(0, 3))
            query = _assert_contract(sql, seed)
            if query is None:
                continue
            accepted += 1
            rendered = to_sql(query)
            reparsed = _assert_contract(rendered, seed)
            assert reparsed is not None, (seed, rendered)
            assert to_sql(reparsed) == rendered, (seed, rendered)
            assert parse_sql(rendered, default_end=_DEFAULT_END) == reparsed
        # Mutations are gentle enough that a decent fraction survives;
        # if this ever trips, the round-trip leg has stopped testing.
        assert accepted >= 5, f"only {accepted} accepted statements (seed {seed})"

    def test_pristine_statements_round_trip_exactly(self):
        """Un-mutated generator output round-trips to an equal query in
        one hop (no normalization needed for dialect-clean spellings)."""
        rng = random.Random(99)
        for _ in range(200):
            sql = _valid_sql(rng)
            query = parse_sql(sql, default_end=_DEFAULT_END)
            assert parse_sql(to_sql(query)) == query
