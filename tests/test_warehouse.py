"""Tests for the warehouse heap and its hash/spatial indexes."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.geo.geometry import BBox
from repro.collection.records import UpdateRecord
from repro.storage.disk import InMemoryDisk
from repro.storage.hash_index import HashIndex
from repro.storage.spatial_index import GridSpatialIndex
from repro.storage.warehouse import ROWS_PER_PAGE, RowPointer, Warehouse


def make_record(i: int, country: str = "germany") -> UpdateRecord:
    return UpdateRecord(
        element_type=("node", "way", "relation")[i % 3],
        date=date(2021, 1, 1 + (i % 28)),
        country=country,
        latitude=10.0 + (i % 50) * 0.5,
        longitude=-20.0 + (i % 80) * 0.5,
        road_type=("residential", "service", "primary")[i % 3],
        update_type=("create", "delete", "geometry", "metadata")[i % 4],
        changeset_id=1000 + i // 3,
    )


@pytest.fixture()
def disk():
    return InMemoryDisk(read_latency=0.0, write_latency=0.0)


class TestWarehouse:
    def test_append_and_fetch(self, disk):
        warehouse = Warehouse(disk)
        pointers = warehouse.append([make_record(i) for i in range(5)])
        assert len(pointers) == 5
        assert warehouse.fetch(pointers[3]) == make_record(3)

    def test_row_count(self, disk):
        warehouse = Warehouse(disk)
        warehouse.append([make_record(i) for i in range(7)])
        assert warehouse.row_count == 7

    def test_rows_span_pages(self, disk):
        warehouse = Warehouse(disk)
        n = ROWS_PER_PAGE + 10
        pointers = warehouse.append([make_record(i) for i in range(n)])
        assert warehouse.page_count == 2
        assert pointers[-1] == RowPointer(page=1, slot=9)
        assert warehouse.fetch(pointers[-1]) == make_record(n - 1)

    def test_scan_returns_all_rows_in_order(self, disk):
        warehouse = Warehouse(disk)
        records = [make_record(i) for i in range(ROWS_PER_PAGE + 3)]
        warehouse.append(records)
        assert list(warehouse.scan()) == records

    def test_fetch_many_batches_page_reads(self, disk):
        warehouse = Warehouse(disk)
        records = [make_record(i) for i in range(20)]
        pointers = warehouse.append(records)
        disk.reset_stats()
        fetched = warehouse.fetch_many([pointers[3], pointers[15], pointers[7]])
        assert fetched == [records[3], records[15], records[7]]
        assert disk.stats.reads == 1  # all rows on one page

    def test_fetch_out_of_range_raises(self, disk):
        warehouse = Warehouse(disk)
        warehouse.append([make_record(0)])
        with pytest.raises(StorageError):
            warehouse.fetch(RowPointer(page=9, slot=0))
        with pytest.raises(StorageError):
            warehouse.fetch(RowPointer(page=0, slot=500))

    def test_recovery_after_restart(self, disk):
        warehouse = Warehouse(disk)
        records = [make_record(i) for i in range(ROWS_PER_PAGE + 5)]
        pointers = warehouse.append(records)
        reopened = Warehouse(disk)
        assert reopened.row_count == len(records)
        assert reopened.fetch(pointers[-1]) == records[-1]
        more = reopened.append([make_record(999)])
        assert reopened.fetch(more[0]) == make_record(999)

    def test_unicode_country_roundtrip(self, disk):
        warehouse = Warehouse(disk)
        record = make_record(1, country="cote_divoire")
        pointer = warehouse.append([record])[0]
        assert warehouse.fetch(pointer).country == "cote_divoire"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_row_pack_unpack_roundtrip(self, i):
        from repro.storage.warehouse import _pack_row, _unpack_row

        record = make_record(i)
        assert _unpack_row(_pack_row(record), 0) == record


class TestHashIndex:
    def test_insert_lookup(self, disk):
        index = HashIndex(disk, bucket_count=8)
        index.insert(42, RowPointer(0, 1))
        index.insert(42, RowPointer(0, 2))
        index.insert(50, RowPointer(1, 0))  # same bucket as 42 (mod 8)
        index.flush()
        assert sorted(index.lookup(42)) == [RowPointer(0, 1), RowPointer(0, 2)]
        assert index.lookup(50) == [RowPointer(1, 0)]

    def test_lookup_missing_is_empty(self, disk):
        index = HashIndex(disk)
        assert index.lookup(7) == []
        assert 7 not in index

    def test_pending_entries_visible_before_flush(self, disk):
        index = HashIndex(disk)
        index.insert(9, RowPointer(3, 3))
        assert index.lookup(9) == [RowPointer(3, 3)]

    def test_flush_merges_with_existing_bucket(self, disk):
        index = HashIndex(disk, bucket_count=4)
        index.insert(1, RowPointer(0, 0))
        index.flush()
        index.insert(5, RowPointer(0, 1))  # bucket 1 again
        index.flush()
        assert index.lookup(1) == [RowPointer(0, 0)]
        assert index.lookup(5) == [RowPointer(0, 1)]

    def test_persistence_across_instances(self, disk):
        index = HashIndex(disk)
        index.insert(77, RowPointer(2, 2))
        index.flush()
        assert HashIndex(disk).lookup(77) == [RowPointer(2, 2)]

    def test_negative_key_rejected(self, disk):
        index = HashIndex(disk)
        with pytest.raises(StorageError):
            index.insert(-1, RowPointer(0, 0))

    def test_lookup_reads_one_bucket_page(self, disk):
        index = HashIndex(disk, bucket_count=16)
        for key in range(64):
            index.insert(key, RowPointer(0, key))
        index.flush()
        disk.reset_stats()
        index.lookup(5)
        assert disk.stats.reads == 1

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=100),
            max_size=40,
        )
    )
    @settings(max_examples=20)
    def test_every_inserted_key_found(self, mapping):
        disk = InMemoryDisk(read_latency=0.0, write_latency=0.0)
        index = HashIndex(disk, bucket_count=7)
        for key, slot in mapping.items():
            index.insert(key, RowPointer(0, slot))
        index.flush()
        for key, slot in mapping.items():
            assert RowPointer(0, slot) in index.lookup(key)


class TestGridSpatialIndex:
    def test_query_finds_inserted_points(self, disk):
        index = GridSpatialIndex(disk)
        index.insert(10.0, 20.0, RowPointer(0, 0))
        index.insert(11.0, 21.0, RowPointer(0, 1))
        index.insert(50.0, 120.0, RowPointer(0, 2))
        index.flush()
        box = BBox(min_lon=19.0, min_lat=9.0, max_lon=22.0, max_lat=12.0)
        assert sorted(index.query(box)) == [RowPointer(0, 0), RowPointer(0, 1)]

    def test_boundary_cells_filter_exactly(self, disk):
        index = GridSpatialIndex(disk, cols=4, rows=4)
        index.insert(0.0, 0.0, RowPointer(0, 0))
        index.insert(0.0, 40.0, RowPointer(0, 1))  # same giant cell
        index.flush()
        box = BBox(min_lon=-1.0, min_lat=-1.0, max_lon=1.0, max_lat=1.0)
        assert index.query(box) == [RowPointer(0, 0)]

    def test_limit_stops_early(self, disk):
        index = GridSpatialIndex(disk)
        for i in range(50):
            index.insert(10.0 + i * 0.01, 20.0, RowPointer(0, i))
        index.flush()
        box = BBox(min_lon=19.0, min_lat=9.0, max_lon=21.0, max_lat=12.0)
        assert len(index.query(box, limit=7)) == 7

    def test_pending_points_visible_before_flush(self, disk):
        index = GridSpatialIndex(disk)
        index.insert(5.0, 5.0, RowPointer(1, 1))
        box = BBox(min_lon=4.0, min_lat=4.0, max_lon=6.0, max_lat=6.0)
        assert index.query(box) == [RowPointer(1, 1)]

    def test_empty_region(self, disk):
        index = GridSpatialIndex(disk)
        index.insert(5.0, 5.0, RowPointer(1, 1))
        index.flush()
        box = BBox(min_lon=100.0, min_lat=50.0, max_lon=110.0, max_lat=60.0)
        assert index.query(box) == []

    def test_persistence(self, disk):
        index = GridSpatialIndex(disk)
        index.insert(5.0, 5.0, RowPointer(1, 1))
        index.flush()
        box = BBox(min_lon=4.0, min_lat=4.0, max_lon=6.0, max_lat=6.0)
        assert GridSpatialIndex(disk).query(box) == [RowPointer(1, 1)]
        assert index.occupied_cells() == 1

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-89.9, max_value=89.9),
                st.floats(min_value=-179.9, max_value=179.9),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=20)
    def test_world_query_returns_everything(self, points):
        disk = InMemoryDisk(read_latency=0.0, write_latency=0.0)
        index = GridSpatialIndex(disk)
        for slot, (lat, lon) in enumerate(points):
            index.insert(lat, lon, RowPointer(0, slot))
        index.flush()
        world = BBox(min_lon=-180, min_lat=-90, max_lon=180, max_lat=90)
        assert len(index.query(world)) == len(points)
