"""Tests for the hierarchical cube index: ingestion, rollups, I/O costs,
the monthly rebuild, and restart recovery."""

from __future__ import annotations

from datetime import date, timedelta

import pytest

from repro.core.calendar import (
    Level,
    day_key,
    month_key,
    week_key,
    year_key,
)
from repro.core.cube import RESOLUTION_COARSE, RESOLUTION_FULL
from repro.core.hierarchy import HierarchicalIndex, page_id_for, parse_page_key
from repro.errors import CubeNotFoundError, IndexError_
from repro.collection.records import UpdateList, UpdateRecord
from repro.storage.disk import InMemoryDisk


def updates_for(day: date, n: int = 3, country: str = "germany") -> UpdateList:
    return UpdateList(
        UpdateRecord(
            element_type="way",
            date=day,
            country=country,
            latitude=50.0,
            longitude=10.0,
            road_type="residential",
            update_type="geometry",
            changeset_id=i + 1,
        )
        for i in range(n)
    )


@pytest.fixture()
def disk():
    return InMemoryDisk(read_latency=0.0, write_latency=0.0)


@pytest.fixture()
def index(tiny_schema, disk):
    return HierarchicalIndex(tiny_schema, disk)


class TestPageIds:
    @pytest.mark.parametrize(
        "key",
        [
            day_key(date(2021, 3, 5)),
            week_key(2021, 3, 2),
            month_key(2021, 3),
            year_key(2021),
        ],
    )
    def test_page_id_roundtrip(self, key):
        assert parse_page_key(page_id_for(key)) == key

    def test_bad_prefix_rejected(self):
        with pytest.raises(IndexError_):
            parse_page_key("other/D2021-03-05")

    def test_garbage_key_rejected(self):
        with pytest.raises(IndexError_):
            parse_page_key("cubes/X2021")


class TestBasicAccess:
    def test_put_get_roundtrip(self, index):
        cube = index.build_day_cube(date(2021, 3, 5), updates_for(date(2021, 3, 5)))
        index.put(cube)
        assert index.get(cube.key) == cube

    def test_get_missing_raises(self, index):
        with pytest.raises(CubeNotFoundError):
            index.get(day_key(date(2021, 1, 1)))

    def test_has(self, index):
        key = day_key(date(2021, 3, 5))
        assert not index.has(key)
        index.put(index.build_day_cube(key.start, updates_for(key.start)))
        assert index.has(key)

    def test_put_unmaintained_level_rejected(self, tiny_schema, disk):
        flat = HierarchicalIndex(tiny_schema, disk, levels=(Level.DAY,))
        from repro.core.cube import DataCube

        weekly = DataCube(schema=tiny_schema, key=week_key(2021, 3, 0))
        with pytest.raises(IndexError_):
            flat.put(weekly)

    def test_index_requires_day_level(self, tiny_schema, disk):
        with pytest.raises(IndexError_):
            HierarchicalIndex(tiny_schema, disk, levels=(Level.WEEK,))

    def test_coverage(self, index):
        assert index.coverage() is None
        index.ingest_day(date(2021, 3, 2), updates_for(date(2021, 3, 2)))
        index.ingest_day(date(2021, 3, 5), updates_for(date(2021, 3, 5)))
        assert index.coverage() == (date(2021, 3, 2), date(2021, 3, 5))


class TestDailyIngestion:
    def test_daily_cube_is_coarse(self, index):
        written = index.ingest_day(date(2021, 3, 3), updates_for(date(2021, 3, 3)))
        assert written == [day_key(date(2021, 3, 3))]
        assert index.get(written[0]).resolution == RESOLUTION_COARSE

    def test_midweek_day_writes_only_daily(self, index):
        written = index.ingest_day(date(2021, 3, 3), updates_for(date(2021, 3, 3)))
        assert len(written) == 1

    def test_week_end_builds_weekly_rollup(self, index):
        for offset in range(7):
            day = date(2021, 3, 1) + timedelta(days=offset)
            written = index.ingest_day(day, updates_for(day, n=2))
        assert written[-1] == week_key(2021, 3, 0)
        weekly = index.get(week_key(2021, 3, 0))
        assert weekly.total == 7 * 2

    def test_month_end_builds_month_rollup(self, index):
        day = date(2021, 2, 1)
        while day <= date(2021, 2, 28):
            written = index.ingest_day(day, updates_for(day, n=1))
            day += timedelta(days=1)
        assert month_key(2021, 2) in written
        assert index.get(month_key(2021, 2)).total == 28

    def test_year_end_builds_year_rollup(self, index):
        # Ingest only December then the year boundary: missing months
        # contribute zero rather than failing.
        day = date(2021, 12, 1)
        while day <= date(2021, 12, 31):
            written = index.ingest_day(day, updates_for(day, n=1))
            day += timedelta(days=1)
        assert year_key(2021) in written
        assert index.get(year_key(2021)).total == 31

    def test_rollup_sums_equal_children(self, index):
        day = date(2021, 2, 1)
        while day <= date(2021, 2, 28):
            index.ingest_day(day, updates_for(day, n=day.day % 3 + 1))
            day += timedelta(days=1)
        month_total = index.get(month_key(2021, 2)).total
        weekly_total = sum(
            index.get(week_key(2021, 2, i)).total for i in range(4)
        )
        daily_total = sum(
            index.get(day_key(date(2021, 2, d))).total for d in range(1, 29)
        )
        assert month_total == weekly_total == daily_total


class TestMaintenanceIO:
    """The paper's Section VI-A I/O accounting.

    "Normally, we would need only one I/O for daily cubes.  If it is
    the end of the week/month/year, we would need up to 8, 6, and 13
    I/Os, respectively."
    """

    def test_plain_day_costs_one_io(self, index, disk):
        index.ingest_day(date(2021, 3, 1), updates_for(date(2021, 3, 1)))
        disk.reset_stats()
        index.ingest_day(date(2021, 3, 2), updates_for(date(2021, 3, 2)))
        assert disk.stats.total_ios == 1
        assert disk.stats.writes == 1

    def test_week_end_costs_eight_ios(self, index, disk):
        for offset in range(6):
            day = date(2021, 3, 1) + timedelta(days=offset)
            index.ingest_day(day, updates_for(day))
        disk.reset_stats()
        index.ingest_day(date(2021, 3, 7), updates_for(date(2021, 3, 7)))
        # 1 daily write + 6 sibling reads + 1 weekly write = 8 I/Os.
        assert disk.stats.total_ios == 8
        assert disk.stats.reads == 6

    def test_month_end_io_bounded(self, index, disk):
        day = date(2021, 2, 1)
        while day < date(2021, 2, 28):
            index.ingest_day(day, updates_for(day))
            day += timedelta(days=1)
        disk.reset_stats()
        index.ingest_day(date(2021, 2, 28), updates_for(date(2021, 2, 28)))
        # Week-end (8) plus monthly: read 3 other weeks + write month.
        assert disk.stats.reads == 6 + 3
        assert disk.stats.writes == 3

    def test_year_end_io_bounded(self, index, disk):
        day = date(2021, 12, 1)
        while day < date(2021, 12, 31):
            index.ingest_day(day, updates_for(day))
            day += timedelta(days=1)
        disk.reset_stats()
        index.ingest_day(date(2021, 12, 31), updates_for(date(2021, 12, 31)))
        # Daily write + month rollup (4 week reads + 2 leftover-day
        # reads + write) + year rollup (11 month reads + write).
        assert disk.stats.writes == 3  # daily + monthly + yearly
        assert disk.stats.reads <= 17


class TestMonthlyRebuild:
    def _filled_month(self, index):
        day = date(2021, 2, 1)
        while day <= date(2021, 2, 28):
            index.ingest_day(day, updates_for(day, n=1))
            day += timedelta(days=1)

    def test_rebuild_upgrades_resolution(self, index):
        self._filled_month(index)
        assert index.get(month_key(2021, 2)).resolution == RESOLUTION_COARSE
        by_day = {
            date(2021, 2, d): updates_for(date(2021, 2, d), n=1)
            for d in range(1, 29)
        }
        index.rebuild_month(month_key(2021, 2), by_day)
        assert index.get(month_key(2021, 2)).resolution == RESOLUTION_FULL
        assert index.get(day_key(date(2021, 2, 10))).resolution == RESOLUTION_FULL

    def test_rebuild_replaces_counts(self, index):
        self._filled_month(index)
        by_day = {
            date(2021, 2, d): updates_for(date(2021, 2, d), n=2)
            for d in range(1, 29)
        }
        index.rebuild_month(month_key(2021, 2), by_day)
        assert index.get(month_key(2021, 2)).total == 56

    def test_rebuild_fills_missing_days_with_empty_cubes(self, index):
        self._filled_month(index)
        index.rebuild_month(month_key(2021, 2), {})
        assert index.get(month_key(2021, 2)).total == 0
        assert index.get(day_key(date(2021, 2, 15))).total == 0

    def test_rebuild_updates_year_cube_when_present(self, index):
        day = date(2021, 12, 1)
        while day <= date(2021, 12, 31):
            index.ingest_day(day, updates_for(day, n=1))
            day += timedelta(days=1)
        assert index.get(year_key(2021)).total == 31
        by_day = {
            date(2021, 12, d): updates_for(date(2021, 12, d), n=3)
            for d in range(1, 32)
        }
        index.rebuild_month(month_key(2021, 12), by_day)
        assert index.get(year_key(2021)).total == 93

    def test_rebuild_requires_month_key(self, index):
        with pytest.raises(IndexError_):
            index.rebuild_month(week_key(2021, 2, 0), {})


class TestTruncatedHierarchies:
    def test_flat_index_never_builds_rollups(self, tiny_schema, disk):
        flat = HierarchicalIndex(tiny_schema, disk, levels=(Level.DAY,))
        for offset in range(7):
            day = date(2021, 3, 1) + timedelta(days=offset)
            flat.ingest_day(day, updates_for(day))
        assert flat.pages_per_level() == {Level.DAY: 7}

    def test_two_level_index_builds_weeks_only(self, tiny_schema, disk):
        two = HierarchicalIndex(
            tiny_schema, disk, levels=(Level.DAY, Level.WEEK)
        )
        day = date(2021, 2, 1)
        while day <= date(2021, 2, 28):
            two.ingest_day(day, updates_for(day))
            day += timedelta(days=1)
        pages = two.pages_per_level()
        assert pages[Level.DAY] == 28
        assert pages[Level.WEEK] == 4
        assert Level.MONTH not in pages


class TestPersistence:
    def test_catalog_survives_restart(self, tiny_schema, disk):
        index = HierarchicalIndex(tiny_schema, disk)
        for offset in range(7):
            day = date(2021, 3, 1) + timedelta(days=offset)
            index.ingest_day(day, updates_for(day))
        reopened = HierarchicalIndex(tiny_schema, disk)
        assert reopened.has(week_key(2021, 3, 0))
        assert reopened.get(day_key(date(2021, 3, 4))).total == 3
        assert reopened.coverage() == (date(2021, 3, 1), date(2021, 3, 7))

    def test_storage_accounting(self, tiny_schema, disk):
        from repro.storage.serializer import cube_page_size

        index = HierarchicalIndex(tiny_schema, disk)
        index.ingest_day(date(2021, 3, 1), updates_for(date(2021, 3, 1)))
        assert index.total_pages() == 1
        assert index.storage_bytes() == cube_page_size(tiny_schema)

    def test_bulk_load_equivalent_to_daily_ingest(self, tiny_schema):
        disk_a = InMemoryDisk(read_latency=0, write_latency=0)
        disk_b = InMemoryDisk(read_latency=0, write_latency=0)
        a = HierarchicalIndex(tiny_schema, disk_a)
        b = HierarchicalIndex(tiny_schema, disk_b)
        by_day = {}
        day = date(2021, 2, 1)
        while day <= date(2021, 2, 28):
            by_day[day] = updates_for(day, n=day.day % 2 + 1)
            a.ingest_day(day, by_day[day])
            day += timedelta(days=1)
        b.bulk_load(by_day, resolution=RESOLUTION_COARSE)
        assert a.get(month_key(2021, 2)).total == b.get(month_key(2021, 2)).total
        assert a.pages_per_level() == b.pages_per_level()
