"""Unit tests for the ingestion write-ahead log.

These pin the WAL's protocol invariants directly at the page level —
the crash *matrix* (whole-system kills at every injection point) lives
in ``test_crash_recovery.py``; here each mechanism is exercised in
isolation: pre-image capture, the atomic commit point, rollback,
torn-undo skipping, orphan collection, and batch numbering.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.disk import InMemoryDisk
from repro.storage.wal import IngestWAL, WalRecovery


def _disk() -> InMemoryDisk:
    return InMemoryDisk(read_latency=0, write_latency=0)


def _snapshot(disk: InMemoryDisk) -> dict[str, bytes]:
    """Every non-WAL page, by id."""
    return {
        page_id: disk.read(page_id)
        for page_id in disk.list_pages("")
        if not page_id.startswith("wal/")
    }


class TestBatchLifecycle:
    def test_begin_writes_intent(self):
        disk = _disk()
        wal = IngestWAL(disk)
        batch = wal.begin({"kind": "daily", "day": "2021-01-01"})
        assert wal.active
        payload = json.loads(disk.read("wal/intent").decode("utf-8"))
        assert payload["batch"] == batch
        assert payload["meta"]["day"] == "2021-01-01"

    def test_commit_deletes_intent_and_checkpoints(self):
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"cube")
        wal.commit({"kind": "daily"})
        assert not wal.active
        assert "wal/intent" not in disk
        assert list(disk.list_pages("wal/undo/")) == []
        checkpoint = wal.last_checkpoint()
        assert checkpoint is not None and checkpoint["batch"] == 1

    def test_double_begin_rejected(self):
        wal = IngestWAL(_disk())
        wal.begin()
        with pytest.raises(StorageError, match="already active"):
            wal.begin()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(StorageError, match="no active"):
            IngestWAL(_disk()).commit()

    def test_begin_over_leftover_intent_rejected(self):
        """A new process must recover before it can start a batch."""
        disk = _disk()
        IngestWAL(disk).begin()
        with pytest.raises(StorageError, match="recover"):
            IngestWAL(disk).begin()

    def test_batch_numbers_survive_restart(self):
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.commit()
        wal.begin()
        wal.commit()
        assert IngestWAL(disk).begin() == 3


class TestJournaling:
    def test_first_touch_only(self):
        """Two writes to one page capture exactly one pre-image."""
        disk = _disk()
        wal = IngestWAL(disk)
        disk.write("cubes/D2021-01-01", b"before")
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"v1")
        wal.store.write("cubes/D2021-01-01", b"v2")
        assert len(list(disk.list_pages("wal/undo/"))) == 1

    def test_wal_pages_never_journaled(self):
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.store.write("wal/oddball", b"x")
        undo = [
            page_id
            for page_id in disk.list_pages("wal/undo/")
        ]
        assert undo == []

    def test_passthrough_outside_batch(self):
        """No undo traffic without an open batch (the no-op guarantee)."""
        disk = _disk()
        wal = IngestWAL(disk)
        wal.store.write("cubes/D2021-01-01", b"x")
        wal.store.delete("cubes/D2021-01-01")
        assert list(disk.list_pages("wal/")) == []


class TestRecovery:
    def test_clean_store_is_a_noop(self):
        report = IngestWAL(_disk()).recover()
        assert report == WalRecovery()

    def test_rollback_restores_overwrites_deletes_and_creates(self):
        disk = _disk()
        disk.write("cubes/D2021-01-01", b"old-cube")
        disk.write("meta/daily_cursor", b"41")
        wal = IngestWAL(disk)
        before = _snapshot(disk)

        wal.begin({"kind": "daily"})
        wal.store.write("cubes/D2021-01-01", b"new-cube")   # overwrite
        wal.store.delete("meta/daily_cursor")               # delete
        wal.store.write("warehouse/heap/000042", b"rows")   # create
        # ...crash here: no commit.  A fresh process recovers.
        report = IngestWAL(disk).recover()
        assert report.rolled_back
        assert report.batch_meta == {"kind": "daily"}
        assert report.pages_restored == 3
        assert _snapshot(disk) == before
        assert list(disk.list_pages("wal/")) == []

    def test_recover_is_idempotent(self):
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"x")
        fresh = IngestWAL(disk)
        assert fresh.recover().rolled_back
        again = fresh.recover()
        assert not again.rolled_back and again.pages_restored == 0

    def test_torn_intent_means_nothing_to_restore(self):
        """Garbage in the intent page = the batch died during begin();
        recovery clears it without touching data pages."""
        disk = _disk()
        disk.write("cubes/D2021-01-01", b"cube")
        disk.write("wal/intent", b"\x00garbage\xff")
        report = IngestWAL(disk).recover()
        assert report.rolled_back
        assert report.pages_restored == 0
        assert disk.read("cubes/D2021-01-01") == b"cube"
        assert "wal/intent" not in disk

    def test_torn_undo_page_is_skipped_not_restored(self):
        """A corrupt pre-image is never written back: write-ahead
        ordering means its data page was provably untouched."""
        disk = _disk()
        disk.write("cubes/D2021-01-01", b"original")
        wal = IngestWAL(disk)
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"overwritten")
        undo_id = next(iter(disk.list_pages("wal/undo/")))
        disk.write(undo_id, disk.read(undo_id)[:-4])  # tear the payload
        report = IngestWAL(disk).recover()
        assert report.pages_skipped == 1
        assert report.pages_restored == 0
        # The torn pre-image was NOT restored over the page...
        assert disk.read("cubes/D2021-01-01") == b"overwritten"
        # ...and the torn undo page itself is gone.
        assert list(disk.list_pages("wal/")) == []

    def test_orphan_undo_pages_collected(self):
        """Undo left by a crash between commit-point and GC is garbage."""
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"x")
        disk.delete("wal/intent")  # simulate crash right after commit point
        report = IngestWAL(disk).recover()
        assert not report.rolled_back
        assert report.orphans_collected == 1
        assert disk.read("cubes/D2021-01-01") == b"x"

    def test_crash_during_recovery_is_recoverable(self):
        """Recovery is restartable: a second pass after a partial first
        pass still converges to the pre-batch state."""
        disk = _disk()
        disk.write("cubes/D2021-01-01", b"a")
        disk.write("cubes/D2021-01-02", b"b")
        wal = IngestWAL(disk)
        before = _snapshot(disk)
        wal.begin()
        wal.store.write("cubes/D2021-01-01", b"A")
        wal.store.write("cubes/D2021-01-02", b"B")
        # First recovery pass restores one page then "crashes": emulate
        # by hand-rolling what _restore_batch would have half-done.
        fresh = IngestWAL(disk)
        undo_ids = sorted(disk.list_pages("wal/undo/"), reverse=True)
        parsed = fresh._parse_undo(disk.read(undo_ids[0]))
        assert parsed is not None
        page_id, _, payload = parsed
        disk.write(page_id, payload)
        disk.delete(undo_ids[0])
        # The process dies; a third process runs full recovery.
        assert IngestWAL(disk).recover().rolled_back
        assert _snapshot(disk) == before


class TestCheckpoint:
    def test_missing_checkpoint_reads_none(self):
        assert IngestWAL(_disk()).last_checkpoint() is None

    def test_checkpoint_carries_commit_meta(self):
        disk = _disk()
        wal = IngestWAL(disk)
        wal.begin()
        wal.commit({"kind": "monthly", "month": "M2021-01"})
        checkpoint = wal.last_checkpoint()
        assert checkpoint is not None
        assert checkpoint["meta"] == {"kind": "monthly", "month": "M2021-01"}

    def test_unparseable_checkpoint_reads_none(self):
        disk = _disk()
        disk.write("wal/checkpoint", b"not json")
        assert IngestWAL(disk).last_checkpoint() is None
