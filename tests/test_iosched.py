"""Tests for the I/O scheduler: single-flight dedup, overlapped
fetches, and the virtual disk's queue-depth (rebook) accounting."""

from __future__ import annotations

import random
import threading
import time
from datetime import date, timedelta

import pytest

from repro.collection.records import UpdateList, UpdateRecord
from repro.core.dimensions import default_schema
from repro.core.executor import QueryExecutor
from repro.core.hierarchy import HierarchicalIndex
from repro.core.iosched import IOScheduler
from repro.core.optimizer import FlatPlanner
from repro.core.query import AnalysisQuery
from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.storage.disk import InMemoryDisk

COUNTRIES = ["united_states", "germany", "qatar"]


def make_small_index(
    days: int = 8, parallelism: int = 1, read_latency: float = 0.005
) -> tuple[HierarchicalIndex, InMemoryDisk]:
    """A tiny atlas-free index with one daily cube per day."""
    schema = default_schema(COUNTRIES, road_types=4)
    disk = InMemoryDisk(
        read_latency=read_latency, write_latency=0.0, parallelism=parallelism
    )
    index = HierarchicalIndex(schema, disk)
    rng = random.Random(3)
    road_values = schema.road_type.values[:-1]
    updates_by_day: dict[date, UpdateList] = {}
    day = date(2021, 1, 1)
    for _ in range(days):
        updates = UpdateList()
        for i in range(3):
            updates.append(
                UpdateRecord(
                    element_type="way",
                    date=day,
                    country=rng.choice(COUNTRIES),
                    latitude=0.0,
                    longitude=0.0,
                    road_type=rng.choice(road_values),
                    update_type="create",
                    changeset_id=day.toordinal() * 10 + i,
                )
            )
        updates_by_day[day] = updates
        day += timedelta(days=1)
    index.bulk_load(updates_by_day)
    disk.reset_stats()
    return index, disk


class TestSingleFlight:
    def test_concurrent_fetches_share_one_load(self):
        sched = IOScheduler(max_workers=8, metrics=MetricsRegistry())
        gate = threading.Event()
        entered = threading.Event()
        load_calls = []

        def slow_load(key):
            load_calls.append(key)
            entered.set()
            assert gate.wait(timeout=5)
            return f"value-of-{key}"

        results: list[tuple[str, bool]] = []
        errors: list[BaseException] = []

        def worker():
            try:
                results.append(sched.fetch("K", slow_load))
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        threads[0].start()
        assert entered.wait(timeout=5)  # leader is inside the load
        for thread in threads[1:]:
            thread.start()
        # Wait until all 7 followers have parked on the leader's future.
        deadline = time.perf_counter() + 5
        while (
            sched.metrics.value("rased_iosched_coalesced_total") < 7
            and time.perf_counter() < deadline
        ):
            time.sleep(0.001)
        gate.set()
        for thread in threads:
            thread.join(timeout=5)
        assert not errors
        assert len(load_calls) == 1  # exactly one real load
        assert [value for value, _ in results] == ["value-of-K"] * 8
        assert sum(1 for _, led in results if led) == 1
        assert sched.inflight_count == 0

    def test_leader_exception_propagates_to_followers(self):
        sched = IOScheduler(max_workers=4, metrics=MetricsRegistry())

        def boom(key):
            raise ValueError(f"cannot load {key}")

        with pytest.raises(ValueError, match="cannot load K"):
            sched.fetch("K", boom)
        # The in-flight entry is cleaned up: a retry runs a fresh load.
        value, led = sched.fetch("K", lambda key: 42)
        assert (value, led) == (42, True)

    def test_fetch_many_loads_each_key_once(self):
        sched = IOScheduler(max_workers=4, metrics=MetricsRegistry())
        loads = []
        batch = sched.fetch_many(
            ["a", "b", "a", "c", "b"],
            lambda key: loads.append(key) or key.upper(),
        )
        assert batch.values == {"a": "A", "b": "B", "c": "C"}
        assert batch.led == 3
        assert batch.coalesced == 0
        assert sorted(loads) == ["a", "b", "c"]

    def test_fetch_many_propagates_exceptions(self):
        sched = IOScheduler(max_workers=4, metrics=MetricsRegistry())

        def flaky(key):
            if key == "bad":
                raise KeyError(key)
            return key

        with pytest.raises(KeyError):
            sched.fetch_many(["ok", "bad"], flaky)

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigError):
            IOScheduler(max_workers=0)


class TestRebookAccounting:
    def test_overlap_credit_is_deterministic(self):
        disk = InMemoryDisk(read_latency=0.005, write_latency=0.0, parallelism=4)
        disk.write("p", b"x" * 8)
        for _ in range(8):
            disk.read("p")
        writes_charged = disk.stats.simulated_seconds
        assert writes_charged == pytest.approx(8 * 0.005)
        credit = disk.rebook_overlapped_reads(8)
        # 8 reads drained 4 at a time: makespan 2 ticks, credit 6.
        assert credit == pytest.approx(6 * 0.005)
        assert disk.stats.simulated_seconds == pytest.approx(2 * 0.005)
        assert disk.stats.overlap_credit_seconds == pytest.approx(credit)
        # Invariant: simulated + credit always equals the serial charge.
        assert disk.stats.simulated_seconds + disk.stats.overlap_credit_seconds == (
            pytest.approx(8 * 0.005)
        )

    def test_rebook_is_noop_at_depth_one(self):
        disk = InMemoryDisk(read_latency=0.005, write_latency=0.0, parallelism=1)
        disk.write("p", b"x")
        for _ in range(8):
            disk.read("p")
        assert disk.rebook_overlapped_reads(8) == 0.0
        assert disk.stats.simulated_seconds == pytest.approx(8 * 0.005)
        assert disk.stats.overlap_credit_seconds == 0.0

    def test_rebook_ignores_single_reads(self):
        disk = InMemoryDisk(read_latency=0.005, write_latency=0.0, parallelism=4)
        assert disk.rebook_overlapped_reads(1) == 0.0
        assert disk.rebook_overlapped_reads(0) == 0.0

    def test_rejects_bad_parallelism(self):
        with pytest.raises(ConfigError):
            InMemoryDisk(parallelism=0)


class TestExecutorOverlap:
    def test_modeled_speedup_on_cold_plan(self):
        """A cold 8-read plan at depth 4 models >= 3x less disk time."""
        query = AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 1, 8))

        index_serial, disk_serial = make_small_index(parallelism=1)
        serial = QueryExecutor(
            index_serial, optimizer=FlatPlanner(index_serial)
        ).execute(query)

        index_par, disk_par = make_small_index(parallelism=4)
        sched = IOScheduler(max_workers=8, metrics=MetricsRegistry())
        try:
            parallel = QueryExecutor(
                index_par,
                optimizer=FlatPlanner(index_par),
                iosched=sched,
            ).execute(query)
        finally:
            sched.shutdown()

        assert parallel.rows == serial.rows
        assert serial.stats.disk_reads == parallel.stats.disk_reads == 8
        assert disk_serial.stats.simulated_seconds == pytest.approx(8 * 0.005)
        assert disk_par.stats.simulated_seconds == pytest.approx(2 * 0.005)
        assert disk_par.stats.overlap_credit_seconds == pytest.approx(6 * 0.005)
        assert (
            disk_serial.stats.simulated_seconds
            >= 3 * disk_par.stats.simulated_seconds
        )

    def test_trace_counts_survive_overlapped_fetch(self):
        """cache + disk phase counts still sum to cube_count."""
        index, _ = make_small_index(parallelism=4)
        sched = IOScheduler(max_workers=4, metrics=MetricsRegistry())
        try:
            executor = QueryExecutor(
                index, optimizer=FlatPlanner(index), iosched=sched
            )
            result = executor.execute(
                AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 1, 8))
            )
        finally:
            sched.shutdown()
        trace = result.stats.trace
        assert trace is not None
        phases = trace.phases
        fetched = sum(
            phases[name].count
            for name in ("phase1.fetch.cache", "phase1.fetch.disk")
            if name in phases
        )
        assert fetched == result.stats.cube_count == 8
