"""Tests for the 4-D data cube: building, rollups, in-memory aggregation."""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import day_key, month_key, week_key
from repro.core.cube import (
    DEFAULT_SPARSE_THRESHOLD,
    DataCube,
    RESOLUTION_COARSE,
    RESOLUTION_FULL,
    SparseCube,
    as_dense,
    as_sparse,
    empty_like,
    sum_arrays,
    sum_cubes,
)
from repro.core.dimensions import default_schema
from repro.errors import DimensionError


@pytest.fixture()
def cube(tiny_schema):
    return DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))


def records_strategy(schema):
    return st.lists(
        st.tuples(
            st.sampled_from(schema.element_type.values),
            st.sampled_from(schema.country.values),
            st.sampled_from(schema.road_type.values),
            st.sampled_from(schema.update_type.values),
        ),
        max_size=60,
    )


class TestConstruction:
    def test_new_cube_is_zero(self, cube):
        assert cube.total == 0
        assert cube.counts.dtype == np.int64

    def test_shape_matches_schema(self, cube, tiny_schema):
        assert cube.counts.shape == tiny_schema.shape
        assert cube.cell_count == tiny_schema.cell_count

    def test_nbytes_is_8_per_cell(self, cube):
        assert cube.nbytes == cube.cell_count * 8

    def test_wrong_shape_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="shape"):
            DataCube(
                schema=tiny_schema,
                key=day_key(date(2021, 1, 1)),
                counts=np.zeros((2, 2, 2, 2)),
            )

    def test_invalid_resolution_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="resolution"):
            DataCube(
                schema=tiny_schema,
                key=day_key(date(2021, 1, 1)),
                resolution="fuzzy",
            )


class TestRecording:
    def test_record_increments_one_cell(self, cube):
        cube.record("way", "germany", "residential", "create")
        assert cube.total == 1
        assert cube.cell("way", "germany", "residential", "create") == 1

    def test_record_codes(self, cube, tiny_schema):
        coords = tiny_schema.encode("node", "qatar", "primary", "delete")
        cube.record_codes(coords, count=3)
        assert cube.cell("node", "qatar", "primary", "delete") == 3

    def test_bulk_record_accumulates_duplicates(self, cube, tiny_schema):
        coords = tiny_schema.encode("way", "germany", "service", "geometry")
        batch = np.array([coords, coords, coords])
        cube.bulk_record(batch)
        assert cube.cell("way", "germany", "service", "geometry") == 3

    def test_bulk_record_empty_shape_rejected(self, cube):
        with pytest.raises(DimensionError):
            cube.bulk_record(np.zeros((3, 2), dtype=np.int64))

    def test_record_unknown_value_raises(self, cube):
        with pytest.raises(DimensionError):
            cube.record("way", "nowhere", "residential", "create")

    @given(st.data())
    @settings(max_examples=25)
    def test_total_equals_record_count(self, data):
        schema = default_schema(["a", "b"], road_types=3)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        records = data.draw(records_strategy(schema))
        for record in records:
            cube.record(*record)
        assert cube.total == len(records)


class TestAddAndRollup:
    def test_add_sums_counts(self, tiny_schema):
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 2)))
        a.record("way", "germany", "residential", "create")
        b.record("way", "germany", "residential", "create")
        b.record("node", "qatar", "primary", "delete")
        a.add(b)
        assert a.total == 3
        assert a.cell("way", "germany", "residential", "create") == 2

    def test_add_coarse_poisons_resolution(self, tiny_schema):
        full = DataCube(
            schema=tiny_schema, key=day_key(date(2021, 3, 1)), resolution=RESOLUTION_FULL
        )
        coarse = DataCube(
            schema=tiny_schema,
            key=day_key(date(2021, 3, 2)),
            resolution=RESOLUTION_COARSE,
        )
        full.add(coarse)
        assert full.resolution == RESOLUTION_COARSE

    def test_add_incompatible_shapes_rejected(self, tiny_schema):
        other_schema = default_schema(["x"], road_types=2)
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=other_schema, key=day_key(date(2021, 3, 1)))
        with pytest.raises(DimensionError):
            a.add(b)

    def test_sum_cubes_matches_manual_total(self, tiny_schema):
        children = []
        for day in range(1, 8):
            child = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, day)))
            child.record("way", "germany", "residential", "create")
            children.append(child)
        parent = sum_cubes(tiny_schema, week_key(2021, 3, 0), children)
        assert parent.total == 7
        assert parent.key == week_key(2021, 3, 0)

    def test_empty_like_is_zero_with_new_key(self, cube):
        cube.record("way", "germany", "residential", "create")
        other = empty_like(cube, week_key(2021, 3, 0))
        assert other.total == 0
        assert other.key == week_key(2021, 3, 0)

    def test_copy_is_independent(self, cube):
        cube.record("way", "germany", "residential", "create")
        duplicate = cube.copy()
        duplicate.record("way", "germany", "residential", "create")
        assert cube.total == 1
        assert duplicate.total == 2

    def test_equality(self, tiny_schema):
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        assert a == b
        b.record("way", "germany", "residential", "create")
        assert a != b


class TestAggregation:
    @pytest.fixture()
    def loaded(self, tiny_schema):
        cube = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        cube.record("way", "germany", "residential", "create")
        cube.record("way", "germany", "residential", "create")
        cube.record("way", "germany", "service", "geometry")
        cube.record("node", "qatar", "primary", "create")
        cube.record("relation", "united_states", "residential", "metadata")
        return cube

    def test_no_filters_no_group_gives_total(self, loaded):
        assert loaded.aggregate() == {(): 5}

    def test_filter_country(self, loaded):
        assert loaded.aggregate({"country": ["germany"]}) == {(): 3}

    def test_filter_multiple_axes(self, loaded):
        result = loaded.aggregate(
            {"country": ["germany"], "update_type": ["create"]}
        )
        assert result == {(): 2}

    def test_group_by_single_axis(self, loaded):
        result = loaded.aggregate(group_by=("element_type",))
        assert result == {("way",): 3, ("node",): 1, ("relation",): 1}

    def test_group_by_two_axes_ordered(self, loaded):
        result = loaded.aggregate(group_by=("country", "update_type"))
        assert result[("germany", "create")] == 2
        assert result[("qatar", "create")] == 1

    def test_group_by_order_is_respected(self, loaded):
        swapped = loaded.aggregate(group_by=("update_type", "country"))
        assert swapped[("create", "germany")] == 2

    def test_filter_and_group_combined(self, loaded):
        result = loaded.aggregate(
            {"element_type": ["way"]}, group_by=("road_type",)
        )
        assert result == {("residential",): 2, ("service",): 1}

    def test_zero_groups_are_omitted(self, loaded):
        result = loaded.aggregate(group_by=("country",))
        assert ("united_states",) in result
        assert all(value > 0 for value in result.values())

    def test_duplicate_filter_values_count_once(self, loaded):
        # Regression: np.take with a repeated code selected the same
        # slice twice, so ["germany", "germany"] double-counted germany.
        once = loaded.aggregate({"country": ["germany"]})
        twice = loaded.aggregate({"country": ["germany", "germany"]})
        assert twice == once

    def test_duplicate_filter_values_grouped(self, loaded):
        result = loaded.aggregate(
            {"country": ["germany", "qatar", "germany"]},
            group_by=("country",),
        )
        assert result == {("germany",): 3, ("qatar",): 1}

    def test_duplicate_filter_labels_deduped_in_array(self, loaded):
        array, labels = loaded.aggregate_array(
            {"country": ["germany", "germany", "qatar"]},
            group_by=("country",),
        )
        assert labels[0] == ["germany", "qatar"]
        assert array.shape == (2,)

    def test_unknown_filter_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate({"color": ["red"]})

    def test_unknown_group_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate(group_by=("color",))

    def test_duplicate_group_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate(group_by=("country", "country"))

    def test_aggregate_array_matches_aggregate(self, loaded):
        array, labels = loaded.aggregate_array(
            {"element_type": ["way"]}, group_by=("country", "road_type")
        )
        as_dict = loaded.aggregate(
            {"element_type": ["way"]}, group_by=("country", "road_type")
        )
        for idx, value in np.ndenumerate(array):
            key = (labels[0][idx[0]], labels[1][idx[1]])
            assert as_dict.get(key, 0) == int(value)

    @given(st.data())
    @settings(max_examples=25)
    def test_group_by_partitions_total(self, data):
        """Any group-by's values sum to the filtered total (no loss)."""
        schema = default_schema(["a", "b", "c"], road_types=4)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        for record in data.draw(records_strategy(schema)):
            cube.record(*record)
        axes = data.draw(
            st.lists(
                st.sampled_from(schema.AXES), unique=True, min_size=1, max_size=3
            )
        )
        grouped = cube.aggregate(group_by=tuple(axes))
        assert sum(grouped.values()) == cube.total

    @given(st.data())
    @settings(max_examples=25)
    def test_filters_partition_by_axis_values(self, data):
        """Filtering each single value of an axis partitions the total."""
        schema = default_schema(["a", "b"], road_types=3)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        for record in data.draw(records_strategy(schema)):
            cube.record(*record)
        axis = data.draw(st.sampled_from(schema.AXES))
        dim = schema.dimension(axis)
        parts = sum(
            cube.aggregate({axis: [value]})[()] for value in dim.values
        )
        assert parts == cube.total


class TestSparseCube:
    @pytest.fixture()
    def pair(self, tiny_schema):
        """The same five records in both representations."""
        dense = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        sparse = SparseCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        for record in (
            ("way", "germany", "residential", "create"),
            ("way", "germany", "residential", "create"),
            ("way", "germany", "service", "geometry"),
            ("node", "qatar", "primary", "create"),
            ("relation", "united_states", "residential", "metadata"),
        ):
            dense.record(*record)
            sparse.record(*record)
        return dense, sparse

    def test_new_sparse_cube_is_empty(self, tiny_schema):
        cube = SparseCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        assert cube.nnz == 0
        assert cube.total == 0
        assert cube.density == 0.0

    def test_unsorted_cells_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="increasing"):
            SparseCube(
                schema=tiny_schema,
                key=day_key(date(2021, 3, 5)),
                cells=np.array([5, 2]),
                values=np.array([1, 1]),
            )

    def test_out_of_range_cell_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="range"):
            SparseCube(
                schema=tiny_schema,
                key=day_key(date(2021, 3, 5)),
                cells=np.array([tiny_schema.cell_count]),
                values=np.array([1]),
            )

    def test_zero_value_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="nonzero"):
            SparseCube(
                schema=tiny_schema,
                key=day_key(date(2021, 3, 5)),
                cells=np.array([3]),
                values=np.array([0]),
            )

    def test_counts_match_dense(self, pair):
        dense, sparse = pair
        assert np.array_equal(sparse.counts, dense.counts)

    def test_cross_form_equality(self, pair):
        dense, sparse = pair
        assert sparse == dense
        assert dense == sparse
        sparse.record("way", "qatar", "service", "delete")
        assert sparse != dense

    def test_cell_lookup_matches_dense(self, pair):
        dense, sparse = pair
        assert sparse.cell("way", "germany", "residential", "create") == 2
        assert sparse.cell("node", "germany", "primary", "delete") == 0

    def test_nbytes_is_16_per_populated_cell(self, pair):
        _, sparse = pair
        assert sparse.nbytes == sparse.nnz * 16
        assert sparse.nbytes < sparse.cell_count * 8

    def test_round_trip_through_forms(self, pair):
        dense, sparse = pair
        assert as_dense(sparse) == dense
        assert as_sparse(dense) == sparse
        assert as_sparse(sparse) is sparse

    def test_add_dense_into_sparse(self, pair):
        dense, sparse = pair
        sparse.add(dense)
        assert sparse.total == 2 * dense.total
        assert np.array_equal(sparse.counts, 2 * dense.counts)

    def test_record_codes_cancellation_removes_cell(self, tiny_schema):
        sparse = SparseCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        coords = tiny_schema.encode("way", "germany", "residential", "create")
        sparse.record_codes(coords, count=2)
        sparse.record_codes(coords, count=-2)
        assert sparse.nnz == 0

    def test_maybe_densify_threshold(self, pair):
        _, sparse = pair
        assert sparse.maybe_densify(0.5) is sparse
        dense = sparse.maybe_densify(sparse.density)  # density >= threshold
        assert isinstance(dense, DataCube)
        assert dense == sparse

    @given(st.data())
    @settings(max_examples=25)
    def test_aggregate_parity_with_dense(self, data):
        """Every filter/group-by combination agrees across forms."""
        schema = default_schema(["a", "b", "c"], road_types=4)
        dense = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        sparse = SparseCube(schema=schema, key=day_key(date(2021, 1, 1)))
        records = data.draw(records_strategy(schema))
        for record in records:
            dense.record(*record)
        coded = np.array(
            [schema.encode(*record) for record in records], dtype=np.int64
        ).reshape(-1, 4)
        if len(records):
            sparse.bulk_record(coded)
        axes = data.draw(
            st.lists(st.sampled_from(schema.AXES), unique=True, max_size=2)
        )
        filter_axis = data.draw(st.sampled_from(schema.AXES))
        filters = {
            filter_axis: list(schema.dimension(filter_axis).values[:2])
        }
        assert sparse.aggregate(filters, tuple(axes)) == dense.aggregate(
            filters, tuple(axes)
        )


class TestSumCubesForms:
    def _children(self, schema, days=7, sparse=False):
        cubes = []
        for day in range(1, days + 1):
            cls = SparseCube if sparse else DataCube
            child = cls(schema=schema, key=day_key(date(2021, 3, day)))
            child.record("way", "germany", "residential", "create")
            child.record("node", "qatar", "primary", "delete")
            cubes.append(child)
        return cubes

    def test_all_dense_children_stay_dense(self, tiny_schema):
        merged = sum_cubes(
            tiny_schema, week_key(2021, 3, 0), self._children(tiny_schema)
        )
        assert isinstance(merged, DataCube)
        assert merged.total == 14

    def test_all_sparse_children_stay_sparse_below_threshold(self, tiny_schema):
        merged = sum_cubes(
            tiny_schema,
            week_key(2021, 3, 0),
            self._children(tiny_schema, sparse=True),
        )
        assert isinstance(merged, SparseCube)
        assert merged.total == 14
        assert merged.nnz == 2

    def test_mixed_children_match_all_dense(self, tiny_schema):
        dense = self._children(tiny_schema, days=4)
        mixed = dense[:2] + [as_sparse(cube) for cube in dense[2:]]
        expected = sum_cubes(tiny_schema, week_key(2021, 3, 0), dense)
        merged = sum_cubes(tiny_schema, week_key(2021, 3, 0), mixed)
        assert isinstance(merged, DataCube)
        assert merged == expected

    def test_forced_sparse_with_dense_children(self, tiny_schema):
        dense = self._children(tiny_schema, days=4)
        merged = sum_cubes(
            tiny_schema, week_key(2021, 3, 0), dense, sparse=True
        )
        assert isinstance(merged, SparseCube)
        assert merged == sum_cubes(tiny_schema, week_key(2021, 3, 0), dense)

    def test_forced_dense_with_sparse_children(self, tiny_schema):
        children = self._children(tiny_schema, sparse=True)
        merged = sum_cubes(
            tiny_schema, week_key(2021, 3, 0), children, sparse=False
        )
        assert isinstance(merged, DataCube)
        assert merged.total == 14

    def test_auto_densify_past_threshold(self):
        schema = default_schema(["a"], road_types=2)  # 72 cells
        children = []
        for day in range(1, 4):
            counts = np.arange(schema.cell_count, dtype=np.int64).reshape(
                schema.shape
            )
            children.append(
                as_sparse(
                    DataCube(
                        schema=schema, key=day_key(date(2021, 3, day)), counts=counts
                    )
                )
            )
        merged = sum_cubes(schema, week_key(2021, 3, 0), children)
        assert isinstance(merged, DataCube)  # density ~1 >= threshold

    def test_scatter_and_coalesce_paths_agree(self, tiny_schema):
        """The large-batch scatter fast path must match the sort-based
        coalesce merge exactly (regression for the crossover heuristic)."""
        rng = np.random.default_rng(5)
        children = []
        for day in range(1, 31):
            cells = np.sort(
                rng.choice(tiny_schema.cell_count, size=40, replace=False)
            ).astype(np.int64)
            values = rng.integers(1, 9, size=40).astype(np.int64)
            children.append(
                SparseCube(
                    schema=tiny_schema,
                    key=day_key(date(2021, 3, day)),
                    cells=cells,
                    values=values,
                )
            )
        # 30 x 40 = 1200 entries >= 288 // 8 cells: the scatter path.
        merged = sum_cubes(tiny_schema, month_key(2021, 3), children)
        reference = DataCube(schema=tiny_schema, key=month_key(2021, 3))
        for child in children:
            reference.add(child)
        assert as_dense(merged) == reference
        # The small-batch coalesce path agrees too (few enough entries
        # that the crossover heuristic keeps the sort-based merge).
        few = [
            SparseCube(
                schema=tiny_schema,
                key=child.key,
                cells=child.cells[:8],
                values=child.values[:8],
            )
            for child in children[:2]
        ]
        small = sum_cubes(tiny_schema, month_key(2021, 3), few)
        assert isinstance(small, SparseCube)
        pair_reference = DataCube(schema=tiny_schema, key=month_key(2021, 3))
        for child in few:
            pair_reference.add(child)
        assert small == pair_reference

    def test_sum_arrays_small_and_streamed_agree(self):
        rng = np.random.default_rng(9)
        small = [rng.integers(0, 7, size=(3, 4, 2, 4)) for _ in range(40)]
        expected = np.zeros((3, 4, 2, 4), dtype=np.int64)
        for array in small:
            expected += array
        assert np.array_equal(sum_arrays(small), expected)
        # Force the streaming branch with arrays past the stack limit.
        big = [
            rng.integers(0, 7, size=(3, 110, 110, 4)).astype(np.int64)
            for _ in range(3)
        ]
        assert np.array_equal(sum_arrays(big), big[0] + big[1] + big[2])

    def test_sum_arrays_empty_rejected(self):
        with pytest.raises(DimensionError):
            sum_arrays([])

    def test_copy_on_write_for_readonly_counts(self, tiny_schema):
        counts = np.zeros(tiny_schema.shape, dtype=np.int64)
        counts.flags.writeable = False
        cube = DataCube(
            schema=tiny_schema, key=day_key(date(2021, 3, 5)), counts=counts
        )
        cube.record("way", "germany", "residential", "create")  # must not raise
        assert cube.total == 1
        assert counts.sum() == 0  # the read-only source is untouched
