"""Tests for the 4-D data cube: building, rollups, in-memory aggregation."""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calendar import day_key, week_key
from repro.core.cube import (
    DataCube,
    RESOLUTION_COARSE,
    RESOLUTION_FULL,
    empty_like,
    sum_cubes,
)
from repro.core.dimensions import default_schema
from repro.errors import DimensionError


@pytest.fixture()
def cube(tiny_schema):
    return DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))


def records_strategy(schema):
    return st.lists(
        st.tuples(
            st.sampled_from(schema.element_type.values),
            st.sampled_from(schema.country.values),
            st.sampled_from(schema.road_type.values),
            st.sampled_from(schema.update_type.values),
        ),
        max_size=60,
    )


class TestConstruction:
    def test_new_cube_is_zero(self, cube):
        assert cube.total == 0
        assert cube.counts.dtype == np.int64

    def test_shape_matches_schema(self, cube, tiny_schema):
        assert cube.counts.shape == tiny_schema.shape
        assert cube.cell_count == tiny_schema.cell_count

    def test_nbytes_is_8_per_cell(self, cube):
        assert cube.nbytes == cube.cell_count * 8

    def test_wrong_shape_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="shape"):
            DataCube(
                schema=tiny_schema,
                key=day_key(date(2021, 1, 1)),
                counts=np.zeros((2, 2, 2, 2)),
            )

    def test_invalid_resolution_rejected(self, tiny_schema):
        with pytest.raises(DimensionError, match="resolution"):
            DataCube(
                schema=tiny_schema,
                key=day_key(date(2021, 1, 1)),
                resolution="fuzzy",
            )


class TestRecording:
    def test_record_increments_one_cell(self, cube):
        cube.record("way", "germany", "residential", "create")
        assert cube.total == 1
        assert cube.cell("way", "germany", "residential", "create") == 1

    def test_record_codes(self, cube, tiny_schema):
        coords = tiny_schema.encode("node", "qatar", "primary", "delete")
        cube.record_codes(coords, count=3)
        assert cube.cell("node", "qatar", "primary", "delete") == 3

    def test_bulk_record_accumulates_duplicates(self, cube, tiny_schema):
        coords = tiny_schema.encode("way", "germany", "service", "geometry")
        batch = np.array([coords, coords, coords])
        cube.bulk_record(batch)
        assert cube.cell("way", "germany", "service", "geometry") == 3

    def test_bulk_record_empty_shape_rejected(self, cube):
        with pytest.raises(DimensionError):
            cube.bulk_record(np.zeros((3, 2), dtype=np.int64))

    def test_record_unknown_value_raises(self, cube):
        with pytest.raises(DimensionError):
            cube.record("way", "nowhere", "residential", "create")

    @given(st.data())
    @settings(max_examples=25)
    def test_total_equals_record_count(self, data):
        schema = default_schema(["a", "b"], road_types=3)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        records = data.draw(records_strategy(schema))
        for record in records:
            cube.record(*record)
        assert cube.total == len(records)


class TestAddAndRollup:
    def test_add_sums_counts(self, tiny_schema):
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 2)))
        a.record("way", "germany", "residential", "create")
        b.record("way", "germany", "residential", "create")
        b.record("node", "qatar", "primary", "delete")
        a.add(b)
        assert a.total == 3
        assert a.cell("way", "germany", "residential", "create") == 2

    def test_add_coarse_poisons_resolution(self, tiny_schema):
        full = DataCube(
            schema=tiny_schema, key=day_key(date(2021, 3, 1)), resolution=RESOLUTION_FULL
        )
        coarse = DataCube(
            schema=tiny_schema,
            key=day_key(date(2021, 3, 2)),
            resolution=RESOLUTION_COARSE,
        )
        full.add(coarse)
        assert full.resolution == RESOLUTION_COARSE

    def test_add_incompatible_shapes_rejected(self, tiny_schema):
        other_schema = default_schema(["x"], road_types=2)
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=other_schema, key=day_key(date(2021, 3, 1)))
        with pytest.raises(DimensionError):
            a.add(b)

    def test_sum_cubes_matches_manual_total(self, tiny_schema):
        children = []
        for day in range(1, 8):
            child = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, day)))
            child.record("way", "germany", "residential", "create")
            children.append(child)
        parent = sum_cubes(tiny_schema, week_key(2021, 3, 0), children)
        assert parent.total == 7
        assert parent.key == week_key(2021, 3, 0)

    def test_empty_like_is_zero_with_new_key(self, cube):
        cube.record("way", "germany", "residential", "create")
        other = empty_like(cube, week_key(2021, 3, 0))
        assert other.total == 0
        assert other.key == week_key(2021, 3, 0)

    def test_copy_is_independent(self, cube):
        cube.record("way", "germany", "residential", "create")
        duplicate = cube.copy()
        duplicate.record("way", "germany", "residential", "create")
        assert cube.total == 1
        assert duplicate.total == 2

    def test_equality(self, tiny_schema):
        a = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        b = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 1)))
        assert a == b
        b.record("way", "germany", "residential", "create")
        assert a != b


class TestAggregation:
    @pytest.fixture()
    def loaded(self, tiny_schema):
        cube = DataCube(schema=tiny_schema, key=day_key(date(2021, 3, 5)))
        cube.record("way", "germany", "residential", "create")
        cube.record("way", "germany", "residential", "create")
        cube.record("way", "germany", "service", "geometry")
        cube.record("node", "qatar", "primary", "create")
        cube.record("relation", "united_states", "residential", "metadata")
        return cube

    def test_no_filters_no_group_gives_total(self, loaded):
        assert loaded.aggregate() == {(): 5}

    def test_filter_country(self, loaded):
        assert loaded.aggregate({"country": ["germany"]}) == {(): 3}

    def test_filter_multiple_axes(self, loaded):
        result = loaded.aggregate(
            {"country": ["germany"], "update_type": ["create"]}
        )
        assert result == {(): 2}

    def test_group_by_single_axis(self, loaded):
        result = loaded.aggregate(group_by=("element_type",))
        assert result == {("way",): 3, ("node",): 1, ("relation",): 1}

    def test_group_by_two_axes_ordered(self, loaded):
        result = loaded.aggregate(group_by=("country", "update_type"))
        assert result[("germany", "create")] == 2
        assert result[("qatar", "create")] == 1

    def test_group_by_order_is_respected(self, loaded):
        swapped = loaded.aggregate(group_by=("update_type", "country"))
        assert swapped[("create", "germany")] == 2

    def test_filter_and_group_combined(self, loaded):
        result = loaded.aggregate(
            {"element_type": ["way"]}, group_by=("road_type",)
        )
        assert result == {("residential",): 2, ("service",): 1}

    def test_zero_groups_are_omitted(self, loaded):
        result = loaded.aggregate(group_by=("country",))
        assert ("united_states",) in result
        assert all(value > 0 for value in result.values())

    def test_duplicate_filter_values_count_once(self, loaded):
        # Regression: np.take with a repeated code selected the same
        # slice twice, so ["germany", "germany"] double-counted germany.
        once = loaded.aggregate({"country": ["germany"]})
        twice = loaded.aggregate({"country": ["germany", "germany"]})
        assert twice == once

    def test_duplicate_filter_values_grouped(self, loaded):
        result = loaded.aggregate(
            {"country": ["germany", "qatar", "germany"]},
            group_by=("country",),
        )
        assert result == {("germany",): 3, ("qatar",): 1}

    def test_duplicate_filter_labels_deduped_in_array(self, loaded):
        array, labels = loaded.aggregate_array(
            {"country": ["germany", "germany", "qatar"]},
            group_by=("country",),
        )
        assert labels[0] == ["germany", "qatar"]
        assert array.shape == (2,)

    def test_unknown_filter_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate({"color": ["red"]})

    def test_unknown_group_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate(group_by=("color",))

    def test_duplicate_group_axis_raises(self, loaded):
        with pytest.raises(DimensionError):
            loaded.aggregate(group_by=("country", "country"))

    def test_aggregate_array_matches_aggregate(self, loaded):
        array, labels = loaded.aggregate_array(
            {"element_type": ["way"]}, group_by=("country", "road_type")
        )
        as_dict = loaded.aggregate(
            {"element_type": ["way"]}, group_by=("country", "road_type")
        )
        for idx, value in np.ndenumerate(array):
            key = (labels[0][idx[0]], labels[1][idx[1]])
            assert as_dict.get(key, 0) == int(value)

    @given(st.data())
    @settings(max_examples=25)
    def test_group_by_partitions_total(self, data):
        """Any group-by's values sum to the filtered total (no loss)."""
        schema = default_schema(["a", "b", "c"], road_types=4)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        for record in data.draw(records_strategy(schema)):
            cube.record(*record)
        axes = data.draw(
            st.lists(
                st.sampled_from(schema.AXES), unique=True, min_size=1, max_size=3
            )
        )
        grouped = cube.aggregate(group_by=tuple(axes))
        assert sum(grouped.values()) == cube.total

    @given(st.data())
    @settings(max_examples=25)
    def test_filters_partition_by_axis_values(self, data):
        """Filtering each single value of an axis partitions the total."""
        schema = default_schema(["a", "b"], road_types=3)
        cube = DataCube(schema=schema, key=day_key(date(2021, 1, 1)))
        for record in data.draw(records_strategy(schema)):
            cube.record(*record)
        axis = data.draw(st.sampled_from(schema.AXES))
        dim = schema.dimension(axis)
        parts = sum(
            cube.aggregate({axis: [value]})[()] for value in dim.values
        )
        assert parts == cube.total
