"""Differential oracle suite: sharded answers == single-process answers.

The sharding tentpole's correctness contract is *byte identity*: for
any analysis query, the scatter-gather engine over N shards must
return exactly the rows (and exactly the ``partial`` flag) the
unsharded engine returns — not approximately, not "within float
noise".  The argument is plan-invariance (any exact cover yields the
same totals) plus exact int64 addition (grouping partial arrays by
shard cannot change a sum).  These tests are the empirical check of
that argument: a seeded sweep of dashboard-mix, single-cell, and
time-series queries — ranges, zones, filters, groupings — executed
against both engines at N ∈ {2, 4, 8}, every answer compared
key-for-key, value-for-value.

Per shard count the sweep runs 70 queries (40 dashboard-mix across
two window spans, 20 single-cell, 10 daily series), so the whole
suite executes 210 differential comparisons — plus the live-overlay
comparisons, which drive two fully assembled deployments (shards=1
vs shards=4) through the same simulated days and compare
``analysis_live`` output.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

import pytest

from repro.core.cache import CacheManager
from repro.core.dimensions import default_schema
from repro.core.executor import QueryExecutor
from repro.core.hierarchy import HierarchicalIndex
from repro.core.optimizer import LevelOptimizer
from repro.core.query import AnalysisQuery
from repro.core.shard import (
    ScatterGatherExecutor,
    ShardedCacheManager,
    ShardedIndex,
    shard_stores_for,
)
from repro.errors import ConfigError
from repro.storage.disk import InMemoryDisk
from repro.synth.scale import scaled_day_updates
from repro.synth.simulator import SimulationConfig
from repro.synth.workload import QueryWorkload
from repro.system import RasedSystem, SystemConfig

COUNTRIES = (
    "united_states",
    "india",
    "germany",
    "brazil",
    "france",
    "vietnam",
    "qatar",
    "japan",
)
START = date(2021, 1, 1)
END = date(2021, 5, 31)
SHARD_COUNTS = (2, 4, 8)


def _dataset():
    schema = default_schema(COUNTRIES, road_types=6)
    rng = random.Random(29)
    updates = {}
    day = START
    while day <= END:
        updates[day] = scaled_day_updates(day, rng, schema, 8)
        day += timedelta(days=1)
    return schema, updates


@pytest.fixture(scope="module")
def corpus():
    return _dataset()


@pytest.fixture(scope="module")
def oracle(corpus):
    """The unsharded engine every sharded answer is compared against."""
    schema, updates = corpus
    index = HierarchicalIndex(
        schema, InMemoryDisk(read_latency=0.0, write_latency=0.0)
    )
    index.bulk_load(updates)
    cache = CacheManager(index, slots=24)
    cache.preload()
    return QueryExecutor(index, cache=cache, optimizer=LevelOptimizer(index))


def _sharded_engine(corpus, shards, byte_budget=None, slots=24):
    schema, updates = corpus
    stores = shard_stores_for(
        InMemoryDisk(read_latency=0.0, write_latency=0.0), shards
    )
    index = ShardedIndex(schema, stores)
    index.bulk_load(updates)
    cache = ShardedCacheManager(
        index, slots=slots, byte_budget=byte_budget
    )
    cache.preload()
    return ScatterGatherExecutor(
        index, cache=cache, optimizer=LevelOptimizer(index)
    )


def _sweep(schema):
    workload = QueryWorkload(
        schema=schema, coverage_start=START, coverage_end=END, seed=41
    )
    queries = []
    queries += workload.dashboard_mix(span_days=30, count=20)
    queries += workload.dashboard_mix(span_days=120, count=20)
    queries += workload.single_cell(span_days=45, count=20)
    queries += workload.daily_series(span_days=21, count=10)
    return queries


def _assert_identical(oracle_result, sharded_result, query):
    assert sharded_result.rows == oracle_result.rows, (
        f"sharded rows diverge for {query}"
    )
    assert sharded_result.stats.partial == oracle_result.stats.partial, (
        f"partial flag diverges for {query}"
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_oracle_sweep_byte_identical(corpus, oracle, shards):
    """70 seeded queries per shard count, compared answer-for-answer."""
    schema, _ = corpus
    engine = _sharded_engine(corpus, shards)
    try:
        queries = _sweep(schema)
        assert len(queries) == 70
        for query in queries:
            _assert_identical(oracle.execute(query), engine.execute(query), query)
    finally:
        engine.shutdown()


def test_total_query_volume_meets_spec(corpus):
    """The sweep above totals >= 200 differential comparisons."""
    schema, _ = corpus
    assert len(_sweep(schema)) * len(SHARD_COUNTS) >= 200


def test_oracle_with_byte_budgeted_shard_caches(corpus, oracle):
    """Byte-budgeted per-shard caches (PR 9 mode) stay byte-identical."""
    schema, _ = corpus
    engine = _sharded_engine(corpus, 4, byte_budget=256 * 1024, slots=0)
    try:
        sweep = _sweep(schema)
        # First 25 plus the daily-series tail, so the batched series
        # fan-out is exercised under byte-budgeted caches too.
        for query in sweep[:25] + sweep[-10:]:
            _assert_identical(oracle.execute(query), engine.execute(query), query)
    finally:
        engine.shutdown()


def test_oracle_without_caches(corpus, oracle):
    """Cache-free scatter (every read from a shard store) is identical."""
    schema, updates = corpus
    stores = shard_stores_for(
        InMemoryDisk(read_latency=0.0, write_latency=0.0), 4
    )
    index = ShardedIndex(schema, stores)
    index.bulk_load(updates)
    engine = ScatterGatherExecutor(
        index, cache=None, optimizer=LevelOptimizer(index)
    )
    try:
        sweep = _sweep(schema)
        # First 25 plus the daily-series tail, so the batched series
        # fan-out is exercised with no cache at all.
        for query in sweep[:25] + sweep[-10:]:
            _assert_identical(oracle.execute(query), engine.execute(query), query)
    finally:
        engine.shutdown()


def test_sharded_catalog_matches_oracle(corpus, oracle):
    """The unioned shard catalogs are exactly the oracle's catalog."""
    schema, updates = corpus
    stores = shard_stores_for(
        InMemoryDisk(read_latency=0.0, write_latency=0.0), 4
    )
    index = ShardedIndex(schema, stores)
    index.bulk_load(updates)
    oracle_index = oracle.index
    assert index.total_pages() == oracle_index.total_pages()
    assert index.coverage() == oracle_index.coverage()
    for level in oracle_index.levels:
        assert index.keys(level) == oracle_index.keys(level)
    assert index.pages_per_level() == oracle_index.pages_per_level()
    # Placement is total: the shard page counts partition the catalog.
    assert sum(
        entry["pages"] for entry in index.shard_status()
    ) == oracle_index.total_pages()


# -- live overlays over two full deployments --------------------------------


def _deployment(shards):
    return RasedSystem.create(
        config=SystemConfig(
            road_types=6,
            cache_slots=16,
            shards=shards,
            simulation=SimulationConfig(
                seed=7,
                mapper_count=8,
                base_sessions_per_day=3,
                nodes_per_country=5,
            ),
        )
    )


@pytest.fixture(scope="module")
def paired_live_systems():
    """shards=1 and shards=4 deployments fed identical simulated days."""
    systems = []
    for shards in (1, 4):
        system = _deployment(shards)
        system.simulate_and_ingest(date(2021, 3, 1), date(2021, 3, 14))
        # "Today": hourly diffs only, visible to the live monitor alone.
        system.publish_partial_day(date(2021, 3, 15), through_hour=13)
        system.poll_live()
        system.warm_cache()
        systems.append(system)
    return systems


def test_live_overlay_byte_identical(paired_live_systems):
    base, sharded = paired_live_systems
    assert isinstance(sharded.executor, ScatterGatherExecutor)
    for group_by in (("country",), ("date",), ("country", "element_type")):
        query = AnalysisQuery(
            start=date(2021, 3, 10), end=date(2021, 3, 15), group_by=group_by
        )
        a = base.dashboard.analysis_live(query)
        b = sharded.dashboard.analysis_live(query)
        assert a.rows == b.rows
        assert a.stats.partial == b.stats.partial
        # The overlay day contributed: drop it and the answers change.
        settled = AnalysisQuery(
            start=date(2021, 3, 10), end=date(2021, 3, 14), group_by=group_by
        )
        assert base.dashboard.analysis_live(settled).rows == (
            sharded.dashboard.analysis_live(settled).rows
        )


def test_ingested_history_identical_across_shard_counts(paired_live_systems):
    base, sharded = paired_live_systems
    query = AnalysisQuery(
        start=date(2021, 3, 1),
        end=date(2021, 3, 14),
        group_by=("country", "update_type"),
    )
    assert base.dashboard.analysis(query).rows == (
        sharded.dashboard.analysis(query).rows
    )


# -- configuration contract --------------------------------------------------


def test_sharding_off_by_default():
    system = RasedSystem.create(
        config=SystemConfig(road_types=6, cache_slots=4)
    )
    assert not isinstance(system.executor, ScatterGatherExecutor)
    assert not isinstance(system.index, ShardedIndex)
    assert system.shard_stores == []


def test_sharding_rejects_durable_ingest():
    with pytest.raises(ConfigError):
        RasedSystem.create(
            config=SystemConfig(road_types=6, shards=2, durable_ingest=True)
        )
