"""Tests for snapshot reconstruction from full history."""

from __future__ import annotations

from datetime import date, datetime, timezone

import pytest

from repro.errors import ParseError
from repro.osm.model import OSMNode, OSMWay
from repro.osm.snapshot import (
    build_snapshot,
    network_sizes_from_history,
    road_segment_counts,
)
from repro.synth.simulator import EditSimulator, SimulationConfig

T0 = datetime(2021, 3, 1, tzinfo=timezone.utc)
T1 = datetime(2021, 3, 2, tzinfo=timezone.utc)


def node(eid, lat=10.0, lon=20.0, version=1, visible=True):
    return OSMNode(
        id=eid, version=version, timestamp=T0, changeset=1,
        lat=lat, lon=lon, visible=visible,
    )


def way(eid, refs, version=1, visible=True, highway="residential"):
    tags = {"highway": highway} if highway else {}
    return OSMWay(
        id=eid, version=version, timestamp=T0, changeset=1,
        refs=refs, visible=visible, tags=tags,
    )


class TestBuildSnapshot:
    def test_latest_version_wins(self):
        snapshot = build_snapshot([node(1), node(1, lat=11.0, version=2)])
        assert snapshot[("node", 1)].lat == 11.0

    def test_order_independent(self):
        forward = build_snapshot([node(1), node(1, lat=11.0, version=2)])
        backward = build_snapshot([node(1, lat=11.0, version=2), node(1)])
        assert forward == backward

    def test_tombstones_removed(self):
        versions = [way(2, (1,)), way(2, (1,), version=2, visible=False)]
        snapshot = build_snapshot(versions)
        assert ("way", 2) not in snapshot

    def test_recreated_element_survives(self):
        versions = [
            node(1),
            node(1, version=2, visible=False),
            node(1, version=3, lat=12.0),
        ]
        snapshot = build_snapshot(versions)
        assert snapshot[("node", 1)].lat == 12.0

    def test_mixed_kinds(self):
        snapshot = build_snapshot([node(1), way(1, (1,))])
        assert ("node", 1) in snapshot
        assert ("way", 1) in snapshot


class TestRoadSegmentCounts:
    def test_counts_highway_ways_by_first_node(self, atlas):
        germany = atlas.zone("germany").bbox.center
        qatar = atlas.zone("qatar").bbox.center
        elements = [
            node(1, lat=germany.lat, lon=germany.lon),
            node(2, lat=qatar.lat, lon=qatar.lon),
            way(10, (1,)),
            way(11, (1,)),
            way(12, (2,)),
            way(13, (2,), highway=None),  # not a road
        ]
        counts = road_segment_counts(build_snapshot(elements), atlas)
        assert counts["germany"] == 2
        assert counts["qatar"] == 1

    def test_way_with_missing_nodes_skipped(self, atlas):
        counts = road_segment_counts(build_snapshot([way(10, (999,))]), atlas)
        assert sum(counts.values()) == 0

    def test_deleted_way_not_counted(self, atlas):
        germany = atlas.zone("germany").bbox.center
        elements = [
            node(1, lat=germany.lat, lon=germany.lon),
            way(10, (1,)),
            way(10, (1,), version=2, visible=False),
        ]
        counts = road_segment_counts(build_snapshot(elements), atlas)
        assert counts["germany"] == 0


class TestEndToEnd:
    def test_sizes_from_history_match_simulator(self, atlas, tmp_path):
        """The OSM-native denominator path agrees with the simulator's
        own bookkeeping — two implementations, same answer."""
        sim = EditSimulator(
            atlas=atlas,
            config=SimulationConfig(
                seed=13, mapper_count=15, base_sessions_per_day=5, nodes_per_country=8
            ),
        )
        for _ in sim.simulate_range(date(2021, 4, 1), date(2021, 4, 10)):
            pass
        path = tmp_path / "history.osm"
        sim.write_history_dump(path)

        from_history = network_sizes_from_history(path, atlas)
        from_simulator = sim.road_network_sizes()
        assert from_history == from_simulator

    def test_empty_history_rejected(self, atlas):
        with pytest.raises(ParseError):
            network_sizes_from_history([], atlas)
