"""HTTP error-path tests: the front door under hostile or broken input.

Covers the Content-Length bugfixes (negative/garbage -> 400, oversized
-> 413), the catch-all 500 (previously the connection just died and the
metric recorded ``status="0"``), ``?n=`` clamping, and the admission
layer observed through real HTTP: 401/429/503 with ``Retry-After``,
server-side deadlines answering 504, and graceful drain on ``stop()``.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request

import pytest

from repro.dashboard.admission import (
    AdmissionConfig,
    AdmissionController,
    Tenant,
    TenantRegistry,
)
from repro.dashboard.server import DashboardServer, MAX_SAMPLE_N


@pytest.fixture(scope="module")
def server(ingested_system):
    with DashboardServer(ingested_system.dashboard) as running:
        yield running


def http_get(server, path, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def raw_post(server, path, body: bytes, content_length: str | None):
    """POST with full control over the Content-Length header."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.putrequest("POST", path)
        connection.putheader("Content-Type", "application/json")
        if content_length is not None:
            connection.putheader("Content-Length", content_length)
        connection.endheaders()
        if body:
            connection.send(body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestContentLengthValidation:
    def test_garbage_content_length_is_400(self, server):
        status, payload = raw_post(server, "/analysis", b"", "banana")
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_negative_content_length_is_400(self, server):
        # Previously int("-1") passed and rfile.read(-1) blocked waiting
        # for EOF on the keep-alive socket until the client gave up.
        status, payload = raw_post(server, "/analysis", b"", "-1")
        assert status == 400
        assert "non-negative" in payload["error"]

    def test_oversized_body_is_413(self, ingested_system):
        with DashboardServer(
            ingested_system.dashboard, max_body_bytes=64
        ) as small:
            body = b"{" + b" " * 200 + b"}"
            status, payload = raw_post(
                small, "/analysis", body, str(len(body))
            )
            assert status == 413
            assert "64-byte limit" in payload["error"]

    def test_body_within_cap_still_works(self, server):
        body = json.dumps({"start": "2021-01-01", "end": "2021-01-07"}).encode()
        status, payload = raw_post(server, "/analysis", body, str(len(body)))
        assert status == 200
        assert payload["rows"]


class TestCatchAll500:
    def test_unexpected_exception_returns_json_500(
        self, ingested_system, monkeypatch
    ):
        def boom(n):
            raise RuntimeError("wires crossed")

        with DashboardServer(ingested_system.dashboard) as broken:
            monkeypatch.setattr(
                ingested_system.dashboard, "top_contributors", boom
            )
            status, payload, _ = http_get(broken, "/contributors")
        assert status == 500
        assert "internal error" in payload["error"]
        assert "wires crossed" in payload["error"]

    def test_500_recorded_with_real_status_label(
        self, ingested_system, monkeypatch
    ):
        # The regression this guards: an unhandled exception used to
        # skip _send entirely, so the request metric recorded the
        # initial sentinel status "0".
        metrics = ingested_system.metrics
        before_500 = metrics.value(
            "rased_http_requests_total", path="/contributors", status="500"
        )
        before_0 = metrics.value(
            "rased_http_requests_total", path="/contributors", status="0"
        )

        def boom(n):
            raise RuntimeError("boom")

        with DashboardServer(ingested_system.dashboard) as broken:
            monkeypatch.setattr(
                ingested_system.dashboard, "top_contributors", boom
            )
            http_get(broken, "/contributors")
        assert (
            metrics.value(
                "rased_http_requests_total", path="/contributors", status="500"
            )
            == before_500 + 1
        )
        assert (
            metrics.value(
                "rased_http_requests_total", path="/contributors", status="0"
            )
            == before_0
        )


class TestCountClamping:
    def test_negative_n_is_400(self, server):
        status, payload, _ = http_get(server, "/samples?zone=germany&n=-3")
        assert status == 400
        assert "non-negative" in payload["error"]

    def test_garbage_n_is_400(self, server):
        status, payload, _ = http_get(server, "/contributors?n=lots")
        assert status == 400
        assert "integer" in payload["error"]

    def test_huge_n_is_clamped_not_rejected(self, server):
        status, payload, _ = http_get(
            server, f"/samples?zone=germany&n={MAX_SAMPLE_N * 1000}"
        )
        assert status == 200
        assert len(payload["samples"]) <= MAX_SAMPLE_N
        status, payload, _ = http_get(
            server, f"/contributors?n={MAX_SAMPLE_N * 1000}"
        )
        assert status == 200

    def test_unknown_path_is_404(self, server):
        status, payload, _ = http_get(server, "/nope")
        assert status == 404


class _TickingClock:
    """Monotonic fake that advances on every read.

    Lets a deadline expire *during* a request without sleeping: the
    admission check stamps t, and by the executor's first phase check
    the clock has ticked past any millisecond-scale budget.
    """

    def __init__(self, tick: float = 0.01) -> None:
        self.now = 1000.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


class TestAdmissionOverHttp:
    def _server(self, system, controller):
        return DashboardServer(system.dashboard, admission=controller)

    def test_missing_key_is_401(self, ingested_system):
        registry = TenantRegistry([Tenant(name="t", key="secret")])
        controller = AdmissionController(
            AdmissionConfig(key_file=None), tenants=registry
        )
        with self._server(ingested_system, controller) as guarded:
            status, payload, _ = http_get(guarded, "/health")
            assert status == 401
            status, _, _ = http_get(
                guarded, "/health", {"X-API-Key": "secret"}
            )
            assert status == 200

    def test_throttle_is_429_with_retry_after(self, ingested_system):
        controller = AdmissionController(
            AdmissionConfig(rate_limit=1.0, burst=1.0)
        )
        with self._server(ingested_system, controller) as guarded:
            status, _, _ = http_get(guarded, "/health")
            assert status == 200
            status, payload, headers = http_get(guarded, "/health")
            assert status == 429
            assert "rate limit" in payload["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_shed_is_503_with_retry_after(self, ingested_system):
        controller = AdmissionController(AdmissionConfig(shed_threshold=1))
        # Hold one admitted slot so the next HTTP arrival trips the door.
        assert controller.admit(None).allowed
        try:
            with self._server(ingested_system, controller) as guarded:
                status, payload, headers = http_get(guarded, "/health")
                assert status == 503
                assert "overloaded" in payload["error"]
                assert "Retry-After" in headers
        finally:
            controller.release()

    def test_bad_deadline_header_is_400(self, ingested_system):
        controller = AdmissionController(
            AdmissionConfig(default_deadline_ms=1000)
        )
        with self._server(ingested_system, controller) as guarded:
            status, payload, _ = http_get(
                guarded, "/health", {"X-Deadline-Ms": "soon"}
            )
            assert status == 400
            assert "X-Deadline-Ms" in payload["error"]

    def test_expired_deadline_is_504_and_counted(self, ingested_system):
        metrics = ingested_system.metrics
        controller = AdmissionController(
            AdmissionConfig(default_deadline_ms=1),
            metrics=metrics,
            clock=_TickingClock(tick=0.01),
        )
        before = metrics.value(
            "rased_admission_deadline_hits_total", path="/analysis"
        )
        body = {"start": "2021-01-01", "end": "2021-02-28"}
        with self._server(ingested_system, controller) as guarded:
            request = urllib.request.Request(
                guarded.url + "/analysis",
                data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 504
            payload = json.loads(excinfo.value.read())
            assert "deadline" in payload["error"]
        assert (
            metrics.value(
                "rased_admission_deadline_hits_total", path="/analysis"
            )
            == before + 1
        )

    def test_deadline_never_touches_unlimited_requests(self, ingested_system):
        # /health carries no deadline work; with no default configured a
        # plain request must sail through even with admission present.
        controller = AdmissionController(AdmissionConfig(shed_threshold=100))
        with self._server(ingested_system, controller) as guarded:
            status, _, _ = http_get(guarded, "/health")
            assert status == 200
        assert controller.inflight == 0


class TestGracefulDrain:
    def test_stop_drains_and_rejects_new_arrivals(self, ingested_system):
        controller = AdmissionController(AdmissionConfig(shed_threshold=100))
        server = DashboardServer(
            ingested_system.dashboard,
            admission=controller,
            drain_timeout=2.0,
        )
        server.start()
        status, _, _ = http_get(server, "/health")
        assert status == 200
        server.stop()
        # The admission layer latched into draining before shutdown, so
        # a controller shared with another listener would now refuse.
        decision = controller.admit(None)
        assert not decision.allowed
        assert decision.reason == "draining"

    def test_stop_without_admission_still_clean(self, ingested_system):
        server = DashboardServer(ingested_system.dashboard)
        server.start()
        status, _, _ = http_get(server, "/health")
        assert status == 200
        server.stop()
