"""Failure injection: corrupted pages, torn files, and bad feeds.

A monitoring system ingests external data forever; these tests pin the
failure modes down to typed errors at the right layer — never silent
wrong answers.
"""

from __future__ import annotations

from datetime import date, datetime, timezone

import pytest

from repro.core.calendar import day_key
from repro.core.hierarchy import HierarchicalIndex, page_id_for
from repro.errors import (
    PageCorruptError,
    PageNotFoundError,
    ParseError,
    StorageError,
)
from repro.collection.records import UpdateList, UpdateRecord
from repro.storage.disk import DirectoryDisk, InMemoryDisk
from repro.storage.serializer import deserialize_cube
from repro.storage.hash_index import HashIndex
from repro.storage.warehouse import RowPointer, Warehouse


def _updates(day):
    return UpdateList(
        [
            UpdateRecord(
                element_type="way",
                date=day,
                country="germany",
                latitude=50.0,
                longitude=10.0,
                road_type="residential",
                update_type="geometry",
                changeset_id=7,
            )
        ]
    )


class TestCorruptCubePages:
    @pytest.fixture()
    def index_with_data(self, tiny_schema):
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(tiny_schema, disk)
        index.ingest_day(date(2021, 3, 5), _updates(date(2021, 3, 5)))
        return index, disk

    def test_bitflip_detected_on_read(self, index_with_data):
        index, disk = index_with_data
        page_id = page_id_for(day_key(date(2021, 3, 5)))
        data = bytearray(disk._pages[page_id])
        data[60] ^= 0x01
        disk._pages[page_id] = bytes(data)
        with pytest.raises(PageCorruptError):
            index.get(day_key(date(2021, 3, 5)))

    def test_truncated_page_detected(self, index_with_data):
        index, disk = index_with_data
        page_id = page_id_for(day_key(date(2021, 3, 5)))
        disk._pages[page_id] = disk._pages[page_id][:50]
        with pytest.raises(PageCorruptError):
            index.get(day_key(date(2021, 3, 5)))

    def test_foreign_page_under_cube_id_detected(self, index_with_data):
        index, disk = index_with_data
        page_id = page_id_for(day_key(date(2021, 3, 5)))
        disk._pages[page_id] = b"this is not a cube page at all......."
        with pytest.raises(PageCorruptError):
            index.get(day_key(date(2021, 3, 5)))

    def test_error_does_not_poison_catalog(self, index_with_data):
        """A corrupt read quarantines the key; re-writing the cube
        heals it back into service."""
        index, disk = index_with_data
        key = day_key(date(2021, 3, 5))
        page_id = page_id_for(key)
        good = disk._pages[page_id]
        disk._pages[page_id] = good[:50]
        with pytest.raises(PageCorruptError):
            index.get(key)
        # The bad page is out of service, not crashing every query.
        assert not index.has(key)
        assert key in index.quarantined_keys()
        # Maintenance rewriting the cube restores it.
        cube = deserialize_cube(good, index.schema)
        index.put(cube)
        assert index.has(key)
        assert key not in index.quarantined_keys()
        assert index.get(key).total == 1


class TestQueryPathFailures:
    def test_missing_page_degrades_to_partial_answer(self, tiny_schema):
        """A cataloged cube whose page vanished yields partial=True —
        never a crash, never a silently-complete-looking total."""
        from repro.core.executor import QueryExecutor
        from repro.core.query import AnalysisQuery

        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HierarchicalIndex(tiny_schema, disk)
        index.ingest_day(date(2021, 3, 5), _updates(date(2021, 3, 5)))
        index.ingest_day(date(2021, 3, 6), _updates(date(2021, 3, 6)))
        del disk._pages[page_id_for(day_key(date(2021, 3, 5)))]
        executor = QueryExecutor(index)
        result = executor.execute(
            AnalysisQuery(start=date(2021, 3, 5), end=date(2021, 3, 6))
        )
        assert result.stats.partial is True
        assert result.stats.quarantined_cubes == 1
        # The surviving day still answers.
        assert result.total == 1
        # And the bad day is quarantined for the health endpoint.
        assert index.quarantined_count() == 1


class TestWarehouseFailures:
    def test_torn_heap_page_detected_on_recovery(self, tiny_schema):
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        warehouse = Warehouse(disk)
        warehouse.append(_updates(date(2021, 3, 5)))
        page_id = next(iter(disk.list_pages("warehouse/heap/")))
        disk._pages[page_id] = disk._pages[page_id][:-13]  # tear a row
        with pytest.raises(StorageError, match="torn"):
            Warehouse(disk)

    def test_torn_hash_bucket_detected(self):
        disk = InMemoryDisk(read_latency=0, write_latency=0)
        index = HashIndex(disk, bucket_count=4)
        index.insert(1, RowPointer(0, 0))
        index.flush()
        bucket_id = next(iter(disk.list_pages("warehouse/hash/")))
        disk._pages[bucket_id] = disk._pages[bucket_id][:-3]
        with pytest.raises(StorageError, match="torn"):
            index.lookup(1)


class TestFeedFailures:
    def test_malformed_state_file(self, tmp_path):
        from repro.osm.replication import ReplicationFeed
        from repro.osm.xml_io import OsmChange

        feed = ReplicationFeed(tmp_path, "day")
        feed.publish(OsmChange(), datetime(2021, 1, 1, tzinfo=timezone.utc))
        (feed.root / "state.txt").write_text("garbage\n")
        with pytest.raises(ParseError):
            feed.current_sequence()

    def test_malformed_diff_file(self, tmp_path):
        from repro.osm.replication import ReplicationFeed, sequence_path
        from repro.osm.xml_io import OsmChange

        feed = ReplicationFeed(tmp_path, "day")
        feed.publish(OsmChange(), datetime(2021, 1, 1, tzinfo=timezone.utc))
        (feed.root / (sequence_path(0) + ".osc")).write_text("<osmChange><create>")
        with pytest.raises(ParseError):
            feed.fetch(0)

    def test_malformed_changeset_file(self, tmp_path):
        from repro.osm.changesets import ChangesetStore

        store = ChangesetStore(tmp_path)
        (tmp_path / "0000000.xml").write_text("<osm><changeset id='1'")
        with pytest.raises(ParseError):
            store.lookup(1)

    def test_crawler_survives_missing_changeset(self, atlas, tmp_path):
        """A diff referencing an unknown changeset skips those rows and
        keeps the rest — one bad join must not kill the day."""
        from repro.collection.daily import DailyCrawler
        from repro.collection.geocode import Geocoder
        from repro.osm.changesets import ChangesetStore
        from repro.osm.model import OSMNode, OSMWay
        from repro.osm.replication import ReplicationFeed
        from repro.osm.xml_io import OsmChange

        stamp = datetime(2021, 1, 1, 12, tzinfo=timezone.utc)
        center = atlas.zone("germany").bbox.center
        node = OSMNode(
            id=1, version=1, timestamp=stamp, changeset=999,
            lat=center.lat, lon=center.lon,
        )
        way = OSMWay(
            id=2, version=1, timestamp=stamp, changeset=999,
            refs=(1,), tags={"highway": "residential"},
        )
        feed = ReplicationFeed(tmp_path / "repl", "day")
        feed.publish(OsmChange(create=[node, way]), stamp)
        crawler = DailyCrawler(
            feed, ChangesetStore(tmp_path / "cs"), Geocoder(atlas)
        )
        result = next(iter(crawler.crawl_new()))
        # The node locates by its own coordinates; the way needed the
        # (missing) changeset and is skipped.
        assert len(result.updates) == 1
        assert result.updates[0].element_type == "node"
        assert result.skipped == 1


class TestDirectoryDiskFailures:
    def test_unreadable_after_external_deletion(self, tmp_path):
        disk = DirectoryDisk(tmp_path)
        disk.write("cubes/D2021-01-01", b"x")
        for page in tmp_path.rglob("*.page"):
            page.unlink()
        with pytest.raises(PageNotFoundError):
            disk.read("cubes/D2021-01-01")
