"""Tests for result export and the system-level live overlay path."""

from __future__ import annotations

import io
import json
from datetime import date

import pytest

from repro.core.query import AnalysisQuery
from repro.dashboard.export import (
    result_to_csv,
    result_to_json_text,
    timelapse_to_text,
)
from repro.errors import QueryError
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig
from tests.conftest import INGESTED_END, INGESTED_START


@pytest.fixture(scope="module")
def result(ingested_system):
    return ingested_system.dashboard.analysis(
        AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("germany", "france", "qatar"),
            group_by=("country", "element_type"),
        )
    )


class TestCsvExport:
    def test_writes_header_and_rows(self, result, tmp_path):
        path = tmp_path / "out.csv"
        count = result_to_csv(result, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "country,element_type,value"
        assert len(lines) == count + 1

    def test_rows_sorted_descending(self, result):
        buffer = io.StringIO()
        result_to_csv(result, buffer)
        values = [
            int(line.rsplit(",", 1)[1])
            for line in buffer.getvalue().strip().splitlines()[1:]
        ]
        assert values == sorted(values, reverse=True)

    def test_date_cells_are_iso(self, ingested_system, tmp_path):
        series = ingested_system.dashboard.analysis(
            AnalysisQuery(
                start=date(2021, 1, 1),
                end=date(2021, 1, 7),
                countries=("germany",),
                group_by=("date",),
            )
        )
        buffer = io.StringIO()
        result_to_csv(series, buffer)
        assert "2021-01-0" in buffer.getvalue()


class TestJsonExport:
    def test_document_is_self_describing(self, result):
        payload = json.loads(result_to_json_text(result))
        assert payload["sql"].startswith("SELECT")
        assert payload["group_by"] == ["country", "element_type"]
        assert payload["rows"]
        assert "simulated_ms" in payload["stats"]

    def test_writes_to_path(self, result, tmp_path):
        path = tmp_path / "out.json"
        result_to_json_text(result, path)
        assert json.loads(path.read_text())["rows"]

    def test_round_trips_values(self, result):
        payload = json.loads(result_to_json_text(result))
        total = sum(row["value"] for row in payload["rows"])
        assert total == result.total


class TestTimelapseExport:
    def test_storyboard(self, ingested_system, tmp_path):
        frames = ingested_system.dashboard.timelapse(
            AnalysisQuery(
                start=INGESTED_START, end=INGESTED_END, group_by=("country",)
            )
        )
        path = tmp_path / "timelapse.txt"
        count = timelapse_to_text(frames, path)
        text = path.read_text()
        assert count == len(frames) == 2
        assert "frame 1/2" in text
        assert "shade scale" in text


class TestSystemLivePath:
    @pytest.fixture(scope="class")
    def live_system(self, atlas):
        system = RasedSystem.create(
            atlas=atlas,
            store=InMemoryDisk(read_latency=0, write_latency=0),
            config=SystemConfig(
                road_types=8,
                cache_slots=8,
                simulation=SimulationConfig(
                    seed=77, mapper_count=20, base_sessions_per_day=6, nodes_per_country=8
                ),
            ),
        )
        # Two complete days (published hourly + daily, then ingested)...
        system.publish_day(date(2021, 7, 1), hourly=True)
        system.publish_day(date(2021, 7, 2), hourly=True)
        system.pipeline.run_daily()
        # ...plus "today", existing only as hourly diffs so far.
        system.publish_partial_day(date(2021, 7, 3), through_hour=23)
        system.poll_live()
        return system

    def test_overlay_only_for_uningested_day(self, live_system):
        assert live_system.live_monitor.partial_days() == [date(2021, 7, 3)]

    def test_analysis_live_includes_today(self, live_system):
        query = AnalysisQuery(start=date(2021, 7, 1), end=date(2021, 7, 3))
        stale = live_system.dashboard.analysis(query)
        live = live_system.dashboard.analysis_live(query)
        today_truth = len(live_system.truth_by_day[date(2021, 7, 3)])
        assert live.total == stale.total + today_truth

    def test_analysis_live_equals_analysis_for_past_windows(self, live_system):
        query = AnalysisQuery(start=date(2021, 7, 1), end=date(2021, 7, 2))
        assert (
            live_system.dashboard.analysis_live(query).rows
            == live_system.dashboard.analysis(query).rows
        )

    def test_poll_live_keeps_overlays_for_coverage_holes(self, live_system):
        """Ingesting a later day must NOT drop the overlay for July 3,
        whose daily diff never arrived — only days with a materialized
        daily cube lose their live overlay."""
        system = live_system
        system.publish_day(date(2021, 7, 4), hourly=True)
        system.pipeline.run_daily()
        system.poll_live()
        # July 4 was ingested (its hourly overlay is dropped); July 3
        # remains live because only hourly data exists for it.
        assert system.live_monitor.partial_days() == [date(2021, 7, 3)]
        # And the live analysis still sees July 3's updates.
        query = AnalysisQuery(start=date(2021, 7, 3), end=date(2021, 7, 3))
        live = system.dashboard.analysis_live(query)
        assert live.total == len(system.truth_by_day[date(2021, 7, 3)])

    def test_top_contributors(self, live_system):
        top = live_system.dashboard.top_contributors(5)
        assert top
        assert top[0].change_count >= top[-1].change_count

    def test_contributors_without_store_raises(self, ingested_system):
        from repro.dashboard.api import Dashboard

        bare = Dashboard(executor=ingested_system.executor, atlas=ingested_system.atlas)
        with pytest.raises(QueryError):
            bare.top_contributors()

    def test_analysis_sql_facade(self, live_system):
        result = live_system.dashboard.analysis_sql(
            "SELECT U.ElementType, COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-07-01 AND 2021-07-02 "
            "GROUP BY U.ElementType"
        )
        assert result.rows
