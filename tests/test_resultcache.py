"""Tests for epoch-versioned result memoization, standalone and wired
through a full system (ingest + live-poll invalidation)."""

from __future__ import annotations

from datetime import date

import pytest

from repro.core.query import AnalysisQuery
from repro.core.resultcache import EpochCounter, ResultCache
from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig
from repro.system import RasedSystem, SystemConfig


def _query(day: int = 1) -> AnalysisQuery:
    return AnalysisQuery(
        start=date(2021, 7, 1), end=date(2021, 7, day), group_by=("country",)
    )


class TestResultCacheUnit:
    def test_hit_returns_a_private_copy(self):
        epoch = EpochCounter()
        cache = ResultCache(4, epoch, metrics=MetricsRegistry())
        rows = {("germany",): 3}
        cache.put(_query(), rows, epoch.value)
        rows[("germany",)] = 99  # caller keeps mutating its dict
        first = cache.get(_query())
        assert first == {("germany",): 3}
        first[("germany",)] = -1  # one client's overlay...
        assert cache.get(_query()) == {("germany",): 3}  # ...leaks nowhere

    def test_epoch_bump_invalidates(self):
        epoch = EpochCounter()
        registry = MetricsRegistry()
        cache = ResultCache(4, epoch, metrics=registry)
        cache.put(_query(), {("a",): 1}, epoch.value)
        assert cache.get(_query()) is not None
        epoch.bump()
        assert cache.get(_query()) is None
        assert cache.cached_count == 0  # stale entry was dropped
        assert registry.value("rased_resultcache_invalidations_total") == 1

    def test_put_from_a_stale_epoch_is_discarded(self):
        epoch = EpochCounter()
        cache = ResultCache(4, epoch, metrics=MetricsRegistry())
        planned_at = epoch.value
        epoch.bump()  # maintenance write lands mid-execution
        cache.put(_query(), {("a",): 1}, planned_at)
        assert cache.cached_count == 0

    def test_lru_eviction_beyond_slots(self):
        epoch = EpochCounter()
        registry = MetricsRegistry()
        cache = ResultCache(2, epoch, metrics=registry)
        cache.put(_query(1), {("a",): 1}, epoch.value)
        cache.put(_query(2), {("b",): 2}, epoch.value)
        assert cache.get(_query(1)) is not None  # 1 is now most-recent
        cache.put(_query(3), {("c",): 3}, epoch.value)
        assert cache.get(_query(2)) is None  # 2 was the LRU victim
        assert cache.get(_query(1)) is not None
        assert cache.get(_query(3)) is not None
        assert registry.value("rased_resultcache_evictions_total") == 1

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigError):
            ResultCache(0, EpochCounter())


@pytest.fixture(scope="module")
def memo_system(atlas):
    """A small deployment with memoization ON (3 ingested July days)."""
    system = RasedSystem.create(
        atlas=atlas,
        store=InMemoryDisk(read_latency=0.0005, write_latency=0.0005),
        config=SystemConfig(
            road_types=8,
            cache_slots=8,
            result_cache_slots=32,
            simulation=SimulationConfig(
                seed=23, mapper_count=20, base_sessions_per_day=6, nodes_per_country=8
            ),
        ),
    )
    for day in (1, 2, 3):
        system.publish_day(date(2021, 7, day), hourly=True)
    system.pipeline.run_daily()
    return system


class TestSystemMemoization:
    def test_repeat_query_is_served_from_the_memo(self, memo_system):
        query = _query(3)
        first = memo_system.dashboard.analysis(query)
        second = memo_system.dashboard.analysis(query)
        assert second.rows == first.rows
        assert second.stats.trace.meta.get("result_cache") == "hit"
        assert second.stats.cube_count == 0  # no plan, no fetch
        assert first.stats.trace.meta.get("result_cache") is None
        assert memo_system.metrics.value("rased_resultcache_hits_total") >= 1

    def test_ingesting_a_new_day_invalidates(self, memo_system):
        query = AnalysisQuery(start=date(2021, 7, 1), end=date(2021, 7, 31))
        before = memo_system.dashboard.analysis(query)
        assert (
            memo_system.dashboard.analysis(query).stats.trace.meta.get(
                "result_cache"
            )
            == "hit"
        )
        memo_system.publish_day(date(2021, 7, 4))
        memo_system.pipeline.run_daily()  # index.put bumps the epoch
        after = memo_system.dashboard.analysis(query)
        assert after.stats.trace.meta.get("result_cache") is None
        assert after.total > before.total  # day 4's updates are visible

    def test_live_poll_invalidates(self, memo_system):
        query = AnalysisQuery(start=date(2021, 7, 1), end=date(2021, 7, 31))
        memo_system.dashboard.analysis(query)
        assert (
            memo_system.dashboard.analysis(query).stats.trace.meta.get(
                "result_cache"
            )
            == "hit"
        )
        memo_system.publish_partial_day(date(2021, 7, 5), through_hour=6)
        memo_system.poll_live()  # absorbing overlays bumps the epoch
        fresh = memo_system.dashboard.analysis(query)
        assert fresh.stats.trace.meta.get("result_cache") is None

    def test_live_overlay_never_poisons_the_memo(self, memo_system):
        """analysis_live mutates its result rows; the memo must not see it."""
        query = AnalysisQuery(start=date(2021, 7, 1), end=date(2021, 7, 31))
        live_one = memo_system.dashboard.analysis_live(query)
        live_two = memo_system.dashboard.analysis_live(query)
        plain = memo_system.dashboard.analysis(query)
        assert live_one.total == live_two.total  # overlay applied once each
        assert plain.total < live_one.total  # overlay stayed out of the memo
