"""Tests for the query model and the cube-backed executor, validated by
brute-force recounting of the simulator's ground-truth rows."""

from __future__ import annotations

from collections import Counter
from datetime import date

import pytest

from repro.core.calendar import Level, series_period_start
from repro.core.query import AnalysisQuery, QueryResult, QueryStats
from repro.errors import QueryError
from tests.conftest import INGESTED_END, INGESTED_START


def brute_force(system, query):
    """Recount the ground truth rows with plain Python."""
    rows = Counter()
    for day, truth in system.truth_by_day.items():
        if not query.start <= day <= query.end:
            continue
        for record in truth:
            if (
                query.element_types is not None
                and record.element_type not in query.element_types
            ):
                continue
            if query.road_types is not None and record.road_type not in query.road_types:
                continue
            if (
                query.update_types is not None
                and record.update_type not in query.update_types
            ):
                continue
            zones = [
                z.name for z in system.atlas.zones_for_point(record.point)
            ]
            if query.countries is not None:
                zones = [z for z in zones if z in query.countries]
                if not zones:
                    continue
            key_zones = zones if "country" in query.group_by else [None]
            for zone in key_zones:
                parts = []
                for attribute in query.group_by:
                    if attribute == "date":
                        parts.append(
                            max(
                                series_period_start(record.date, query.date_granularity),
                                query.start,
                            )
                        )
                    elif attribute == "country":
                        parts.append(zone)
                    elif attribute == "road_type":
                        # Mirror the schema's catch-all folding.
                        schema = system.schema
                        value = record.road_type
                        if value not in schema.road_type:
                            value = "other"
                        parts.append(value)
                    else:
                        parts.append(getattr(record, attribute))
                rows[tuple(parts)] += 1
    return dict(rows)


class TestQueryModel:
    def test_inverted_range_rejected(self):
        with pytest.raises(QueryError):
            AnalysisQuery(start=date(2021, 2, 1), end=date(2021, 1, 1))

    def test_unknown_group_by_rejected(self):
        with pytest.raises(QueryError):
            AnalysisQuery(
                start=date(2021, 1, 1), end=date(2021, 1, 2), group_by=("color",)
            )

    def test_duplicate_group_by_rejected(self):
        with pytest.raises(QueryError):
            AnalysisQuery(
                start=date(2021, 1, 1),
                end=date(2021, 1, 2),
                group_by=("country", "country"),
            )

    def test_unknown_metric_rejected(self):
        with pytest.raises(QueryError):
            AnalysisQuery(
                start=date(2021, 1, 1), end=date(2021, 1, 2), metric="median"
            )

    def test_empty_filter_rejected(self):
        with pytest.raises(QueryError):
            AnalysisQuery(
                start=date(2021, 1, 1), end=date(2021, 1, 2), countries=()
            )

    def test_cube_group_by_excludes_date(self):
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 1, 2),
            group_by=("country", "date", "element_type"),
        )
        assert query.cube_group_by == ("country", "element_type")
        assert query.groups_by_date

    def test_describe_mentions_filters(self):
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 1, 2),
            countries=("germany",),
            group_by=("country",),
        )
        text = query.describe()
        assert "germany" in text
        assert "2021-01-01" in text

    def test_result_table_shape(self):
        query = AnalysisQuery(
            start=date(2021, 1, 1), end=date(2021, 1, 2), group_by=("country",)
        )
        result = QueryResult(
            query=query, rows={("germany",): 5, ("qatar",): 2}, stats=QueryStats()
        )
        table = result.to_table()
        assert table[0] == {"country": "germany", "value": 5}
        assert result.total == 7

    def test_sorted_rows_by_key(self):
        query = AnalysisQuery(
            start=date(2021, 1, 1), end=date(2021, 1, 2), group_by=("country",)
        )
        result = QueryResult(query=query, rows={("b",): 1, ("a",): 2})
        assert [k for k, _ in result.sorted_rows(by_value=False)] == [("a",), ("b",)]


class TestExecutorEquivalence:
    """Cube answers must equal brute-force recounts of the truth rows."""

    @pytest.mark.parametrize(
        "query_kwargs",
        [
            dict(),
            dict(group_by=("element_type",)),
            dict(group_by=("country", "element_type")),
            dict(group_by=("road_type", "update_type")),
            dict(countries=("germany", "qatar"), group_by=("country",)),
            dict(element_types=("way",), group_by=("update_type",)),
            dict(
                countries=("europe",),
                group_by=("country", "element_type"),
            ),
            dict(road_types=("residential",), group_by=("element_type",)),
        ],
        ids=[
            "total",
            "by-element",
            "by-country-element",
            "by-road-update",
            "country-filtered",
            "element-filtered",
            "continent-zone",
            "road-filtered",
        ],
    )
    def test_matches_brute_force(self, rebuilt_system, query_kwargs):
        query = AnalysisQuery(
            start=INGESTED_START, end=INGESTED_END, **query_kwargs
        )
        result = rebuilt_system.dashboard.analysis(query)
        expected = brute_force(rebuilt_system, query)
        assert result.rows == expected

    def test_partial_window_matches(self, rebuilt_system):
        query = AnalysisQuery(
            start=date(2021, 1, 10),
            end=date(2021, 2, 13),
            group_by=("element_type",),
        )
        assert rebuilt_system.dashboard.analysis(query).rows == brute_force(
            rebuilt_system, query
        )

    @pytest.mark.parametrize("granularity", [Level.DAY, Level.WEEK, Level.MONTH])
    def test_time_series_matches(self, rebuilt_system, granularity):
        query = AnalysisQuery(
            start=date(2021, 1, 5),
            end=date(2021, 2, 20),
            countries=("germany", "france"),
            group_by=("country", "date"),
            date_granularity=granularity,
        )
        result = rebuilt_system.dashboard.analysis(query)
        expected = brute_force(rebuilt_system, query)
        assert result.rows == expected

    def test_coarse_vs_rebuilt_update_types(self, ingested_system, rebuilt_system):
        """Without the monthly rebuild, metadata counts sit in geometry."""
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            group_by=("update_type",),
        )
        coarse = ingested_system.dashboard.analysis(query).rows
        full = rebuilt_system.dashboard.analysis(query).rows
        assert ("metadata",) not in coarse
        assert full.get(("metadata",), 0) > 0


class TestExecutorMechanics:
    def test_cache_hits_reported(self, ingested_system):
        ingested_system.warm_cache()
        query = AnalysisQuery(start=date(2021, 2, 27), end=date(2021, 2, 28))
        result = ingested_system.dashboard.analysis(query)
        assert result.stats.cache_hits == 2
        assert result.stats.disk_reads == 0

    def test_disk_reads_reported_for_cold_window(self, ingested_system):
        query = AnalysisQuery(start=date(2021, 1, 3), end=date(2021, 1, 5))
        result = ingested_system.dashboard.analysis(query)
        assert result.stats.disk_reads + result.stats.cache_hits == result.stats.cube_count

    def test_simulated_time_includes_disk_latency(self, ingested_system):
        query = AnalysisQuery(start=date(2021, 1, 3), end=date(2021, 1, 6))
        result = ingested_system.dashboard.analysis(query)
        if result.stats.disk_reads:
            assert result.stats.simulated_seconds > result.stats.wall_seconds

    def test_missing_days_counted(self, ingested_system):
        query = AnalysisQuery(start=date(2021, 2, 25), end=date(2021, 3, 5))
        result = ingested_system.dashboard.analysis(query)
        assert result.stats.missing_days == 5

    def test_plan_exposed(self, ingested_system):
        query = AnalysisQuery(start=date(2021, 1, 1), end=date(2021, 1, 31))
        plan = ingested_system.executor.plan(query)
        assert plan.cube_count >= 1

    def test_zero_day_series_kept(self, rebuilt_system):
        """A day with no matching updates still appears in a pure date
        series as a zero point."""
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 1, 7),
            countries=("oceania_010",),  # a cold, rarely edited zone
            group_by=("date",),
        )
        result = rebuilt_system.dashboard.analysis(query)
        assert len(result.rows) == 7


class TestPercentages:
    def test_percentage_uses_network_size(self, rebuilt_system):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("germany",),
            group_by=("country",),
            metric="percentage",
        )
        counts = rebuilt_system.dashboard.analysis(
            AnalysisQuery(
                start=INGESTED_START,
                end=INGESTED_END,
                countries=("germany",),
                group_by=("country",),
            )
        )
        pct = rebuilt_system.dashboard.analysis(query)
        size = rebuilt_system.network_sizes.size("germany")
        expected = 100.0 * counts.rows[("germany",)] / size
        assert pct.rows[("germany",)] == pytest.approx(expected)

    def test_percentage_without_country_group_uses_filter_denominator(
        self, rebuilt_system
    ):
        query = AnalysisQuery(
            start=INGESTED_START,
            end=INGESTED_END,
            countries=("germany", "france"),
            metric="percentage",
        )
        result = rebuilt_system.dashboard.analysis(query)
        denominator = rebuilt_system.network_sizes.denominator(("germany", "france"))
        counts = rebuilt_system.dashboard.analysis(
            AnalysisQuery(
                start=INGESTED_START,
                end=INGESTED_END,
                countries=("germany", "france"),
            )
        )
        assert result.rows[()] == pytest.approx(
            100.0 * counts.rows[()] / denominator
        )

    def test_percentage_requires_registry(self, ingested_system):
        from repro.core.executor import QueryExecutor

        bare = QueryExecutor(ingested_system.index, cache=None)
        with pytest.raises(QueryError):
            bare.execute(
                AnalysisQuery(
                    start=INGESTED_START,
                    end=INGESTED_END,
                    metric="percentage",
                )
            )


class TestNetworkSizeRegistry:
    def test_continent_is_sum_of_countries(self, rebuilt_system):
        registry = rebuilt_system.network_sizes
        atlas = rebuilt_system.atlas
        total = sum(
            registry.size(c.name) for c in atlas.countries_of("europe")
        )
        assert registry.size("europe") == total

    def test_state_is_even_share(self, rebuilt_system):
        registry = rebuilt_system.network_sizes
        usa = registry.size("united_states")
        assert registry.size("minnesota") == max(1, usa // 50)

    def test_unknown_zone_raises(self, rebuilt_system):
        with pytest.raises(QueryError):
            rebuilt_system.network_sizes.size("atlantis")

    def test_world_denominator_skips_zones_of_interest(self, rebuilt_system):
        registry = rebuilt_system.network_sizes
        world = registry.denominator(None)
        countries_total = sum(
            registry.size(c.name) for c in rebuilt_system.atlas.countries
        )
        assert world == countries_total

    def test_update_country_rederives_rollups(self, atlas):
        from repro.core.percentages import NetworkSizeRegistry

        registry = NetworkSizeRegistry(atlas, {"germany": 100})
        before = registry.size("europe")
        registry.update_country("germany", 300)
        assert registry.size("europe") == before + 200

    def test_tsv_roundtrip(self, atlas, tmp_path):
        from repro.core.percentages import NetworkSizeRegistry

        registry = NetworkSizeRegistry(atlas, {"germany": 123, "qatar": 7})
        path = tmp_path / "sizes.tsv"
        registry.write_tsv(path)
        restored = NetworkSizeRegistry.read_tsv(atlas, path)
        assert restored.size("germany") == 123
        assert restored.size("europe") == registry.size("europe")


class TestWindowAdditivity:
    """Splitting a window into adjacent halves must sum to the whole —
    the algebraic property rollup correctness hangs on."""

    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    @_given(
        split=_st.integers(min_value=0, max_value=57),
        group=_st.sampled_from(
            [(), ("element_type",), ("country", "update_type")]
        ),
    )
    @_settings(max_examples=20, deadline=None)
    def test_adjacent_windows_sum_to_whole(self, rebuilt_system, split, group):
        from datetime import timedelta

        boundary = INGESTED_START + timedelta(days=split)
        whole = rebuilt_system.dashboard.analysis(
            AnalysisQuery(start=INGESTED_START, end=INGESTED_END, group_by=group)
        ).rows
        left = rebuilt_system.dashboard.analysis(
            AnalysisQuery(start=INGESTED_START, end=boundary, group_by=group)
        ).rows
        right_start = boundary + timedelta(days=1)
        right = {}
        if right_start <= INGESTED_END:
            right = rebuilt_system.dashboard.analysis(
                AnalysisQuery(start=right_start, end=INGESTED_END, group_by=group)
            ).rows
        combined = dict(left)
        for key, value in right.items():
            combined[key] = combined.get(key, 0) + value
        combined = {k: v for k, v in combined.items() if v}
        assert combined == {k: v for k, v in whole.items() if v}

    def test_single_days_sum_to_week(self, rebuilt_system):
        from datetime import timedelta

        week_start = date(2021, 1, 8)
        week_total = rebuilt_system.dashboard.analysis(
            AnalysisQuery(start=week_start, end=week_start + timedelta(days=6))
        ).rows[()]
        day_sum = sum(
            rebuilt_system.dashboard.analysis(
                AnalysisQuery(
                    start=week_start + timedelta(days=i),
                    end=week_start + timedelta(days=i),
                )
            ).rows[()]
            for i in range(7)
        )
        assert week_total == day_sum


class TestTimeSeriesCacheSnapshot:
    """An admit-on-miss cache changes under a time-series query's own
    feet: each period's misses evict LRU residents, so planning every
    period against the initial snapshot treats long-evicted cubes as
    free.  The executor re-snapshots before each period instead."""

    @pytest.fixture(scope="class")
    def year_index(self):
        from tests.test_iosched import make_small_index

        index, disk = make_small_index(days=365)
        return index, disk

    def _series_executor(self, index, slots=31):
        from repro.core.cache import CacheManager, CacheRatios
        from repro.core.executor import QueryExecutor
        from repro.core.optimizer import LevelOptimizer

        cache = CacheManager(
            index,
            slots=slots,
            ratios=CacheRatios(1.0, 0.0, 0.0, 0.0),
            admit_on_miss=True,
        )
        cache.preload()  # the 31 December dailies
        index.store.reset_stats()
        return QueryExecutor(
            index, cache=cache, optimizer=LevelOptimizer(index)
        )

    def test_monthly_series_replans_after_evictions(self, year_index):
        index, _ = year_index
        executor = self._series_executor(index)
        query = AnalysisQuery(
            start=date(2021, 1, 1),
            end=date(2021, 12, 31),
            group_by=("date",),
            date_granularity=Level.MONTH,
        )
        result = executor.execute(query)
        # Jan..Nov admit 11 monthly cubes, evicting 11 December
        # dailies.  With a refreshed snapshot, December re-plans to ONE
        # monthly read; against the stale snapshot it would have paid
        # 11 surprise daily reads (22 total).
        assert result.stats.disk_reads == 12
        assert result.stats.cache_hits == 0

        from repro.core.executor import QueryExecutor

        bare = QueryExecutor(index).execute(query)
        assert result.rows == bare.rows

    def test_warm_cache_series_stays_on_cache(self, year_index):
        """Fig. 7's warm-cache workload: a fully resident daily series
        touches disk zero times, repeatably."""
        index, _ = year_index
        executor = self._series_executor(index)
        query = AnalysisQuery(
            start=date(2021, 12, 1),
            end=date(2021, 12, 31),
            group_by=("date",),
            date_granularity=Level.DAY,
        )
        for _ in range(2):
            result = executor.execute(query)
            assert result.stats.disk_reads == 0
            assert result.stats.cache_hits == 31
            assert len(result.rows) == 31
