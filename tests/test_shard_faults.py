"""Shard failure semantics: degrade honestly, never answer wrong.

The contract mirrors PR 4's quarantine semantics one level up: a
shard that dies mid-query drops its cubes from the answer and flags
``partial=true`` — every returned total is a lower bound over the
surviving shards, never a silently wrong number.  A simulated *crash*
(:class:`CrashPoint`, a ``BaseException``) must instead propagate:
degradation is for component failures, not for the process-kill
simulation.  And because placement is consistent, restarting one
shard re-warms one shard's cache — the others never go cold.

Injection rides the PR 4 harness: ``shard.query`` is a first-class
injection point, targeted as ``shard/<id>`` so ``page_prefix``
selects a shard the way it selects a page family, and
:func:`repro.testing.faults.shard_fault_hook` adapts a
:class:`FaultPlan` to the executor's ``fault_hook`` seam.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

import pytest

from repro.core.cache import CacheManager
from repro.core.dimensions import default_schema
from repro.core.executor import QueryExecutor
from repro.core.hierarchy import HierarchicalIndex
from repro.core.optimizer import LevelOptimizer
from repro.core.query import AnalysisQuery
from repro.core.resultcache import EpochCounter, ResultCache
from repro.core.shard import (
    ScatterGatherExecutor,
    ShardedCacheManager,
    ShardedIndex,
    shard_stores_for,
)
from repro.storage.disk import InMemoryDisk
from repro.synth.scale import scaled_day_updates
from repro.testing.faults import (
    CrashPoint,
    FaultPlan,
    FaultSpec,
    shard_fault_hook,
)

COUNTRIES = ("united_states", "india", "germany", "brazil", "qatar")
START = date(2021, 1, 1)
END = date(2021, 3, 31)
SHARDS = 4


def _updates(schema):
    rng = random.Random(17)
    updates = {}
    day = START
    while day <= END:
        updates[day] = scaled_day_updates(day, rng, schema, 6)
        day += timedelta(days=1)
    return updates


@pytest.fixture(scope="module")
def schema():
    return default_schema(COUNTRIES, road_types=5)


@pytest.fixture(scope="module")
def oracle(schema):
    index = HierarchicalIndex(
        schema, InMemoryDisk(read_latency=0.0, write_latency=0.0)
    )
    index.bulk_load(_updates(schema))
    cache = CacheManager(index, slots=16)
    cache.preload()
    return QueryExecutor(index, cache=cache, optimizer=LevelOptimizer(index))


def _build_engine(schema, fault_hook=None, slots=16, result_cache=None,
                  read_latency=0.0):
    stores = shard_stores_for(
        InMemoryDisk(read_latency=read_latency, write_latency=0.0), SHARDS
    )
    index = ShardedIndex(schema, stores)
    index.bulk_load(_updates(schema))
    cache = ShardedCacheManager(index, slots=slots) if slots else None
    if cache is not None:
        cache.preload()
    return ScatterGatherExecutor(
        index,
        cache=cache,
        optimizer=LevelOptimizer(index),
        result_cache=result_cache,
        fault_hook=fault_hook,
    )


QUERY = AnalysisQuery(
    start=date(2021, 2, 1), end=date(2021, 3, 15), group_by=("country",)
)


def _touched_shards(engine, query):
    plan = engine.plan(query)
    return {engine.sharded_index.shard_for(key) for key in plan.keys}


def test_dead_shard_yields_partial_lower_bound(schema, oracle):
    """Kill one planned shard: partial=true, every total a lower bound."""
    engine = _build_engine(schema)
    try:
        victim = sorted(_touched_shards(engine, QUERY))[0]
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="shard.query",
                    kind="error",
                    page_prefix=f"shard/{victim}",
                    count=10**9,
                )
            ]
        )
        engine.fault_hook = shard_fault_hook(plan)
        truth = oracle.execute(QUERY)
        degraded = engine.execute(QUERY)
        assert degraded.stats.partial is True
        assert degraded.stats.quarantined_cubes >= 1
        assert plan.fired, "the injected shard fault never fired"
        # Never a wrong total: every surviving row is <= the truth, and
        # no row appears that the truth does not have.
        for key, value in degraded.rows.items():
            assert key in truth.rows
            assert value <= truth.rows[key], (key, value, truth.rows[key])
        assert degraded.rows != truth.rows or len(degraded.rows) < len(
            truth.rows
        )
    finally:
        engine.shutdown()


def test_dead_shard_in_series_fanout_yields_partial(schema, oracle):
    """Kill a shard under the batched series fan-out: same contract.

    A daily series crosses the pool as ONE fan-out carrying every
    period's keys, with its own gather loop — so the dead-shard
    degradation (partial=true, lower-bound rows, never a wrong total)
    needs pinning separately from the single-window path.
    """
    series = AnalysisQuery(
        start=date(2021, 2, 1), end=date(2021, 3, 15), group_by=("date",)
    )
    engine = _build_engine(schema)
    try:
        victim = sorted(_touched_shards(engine, series))[0]
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="shard.query",
                    kind="error",
                    page_prefix=f"shard/{victim}",
                    count=10**9,
                )
            ]
        )
        engine.fault_hook = shard_fault_hook(plan)
        truth = oracle.execute(series)
        degraded = engine.execute(series)
        assert degraded.stats.partial is True
        assert degraded.stats.quarantined_cubes >= 1
        assert plan.fired, "the injected shard fault never fired"
        for key, value in degraded.rows.items():
            assert key in truth.rows
            assert value <= truth.rows[key], (key, value, truth.rows[key])
        assert degraded.rows != truth.rows or len(degraded.rows) < len(
            truth.rows
        )
    finally:
        engine.shutdown()


def test_all_shards_dead_yields_empty_partial(schema):
    plan = FaultPlan.single(
        "shard.query", kind="error", page_prefix="shard/", count=10**9
    )
    engine = _build_engine(schema, fault_hook=shard_fault_hook(plan))
    try:
        result = engine.execute(QUERY)
        assert result.stats.partial is True
        assert result.rows == {}
    finally:
        engine.shutdown()


def test_shard_heals_after_fault_exhausts(schema, oracle):
    """count=1: exactly one degraded answer, then exact answers again."""
    engine = _build_engine(schema)
    try:
        victim = sorted(_touched_shards(engine, QUERY))[0]
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="shard.query",
                    kind="error",
                    page_prefix=f"shard/{victim}",
                    count=1,
                )
            ]
        )
        engine.fault_hook = shard_fault_hook(plan)
        truth = oracle.execute(QUERY)
        first = engine.execute(QUERY)
        assert first.stats.partial is True
        second = engine.execute(QUERY)
        assert second.stats.partial is False
        assert second.rows == truth.rows
    finally:
        engine.shutdown()


def test_partial_answers_are_never_memoized(schema, oracle):
    """A degraded answer must not be served from the result cache."""
    engine = _build_engine(
        schema, result_cache=ResultCache(8, EpochCounter())
    )
    try:
        victim = sorted(_touched_shards(engine, QUERY))[0]
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    point="shard.query",
                    kind="error",
                    page_prefix=f"shard/{victim}",
                    count=1,
                )
            ]
        )
        engine.fault_hook = shard_fault_hook(plan)
        degraded = engine.execute(QUERY)
        assert degraded.stats.partial is True
        healed = engine.execute(QUERY)
        assert healed.stats.partial is False
        assert healed.rows == oracle.execute(QUERY).rows
        # Now that a full answer is memoized, it IS served from cache.
        memoized = engine.execute(QUERY)
        assert memoized.rows == healed.rows
    finally:
        engine.shutdown()


def test_crash_point_propagates(schema):
    """A simulated process kill is not a degradable component failure."""
    plan = FaultPlan.single(
        "shard.query", kind="crash", page_prefix="shard/", count=1
    )
    engine = _build_engine(schema, fault_hook=shard_fault_hook(plan))
    try:
        with pytest.raises(CrashPoint):
            engine.execute(QUERY)
    finally:
        engine.shutdown()


def test_slow_shard_answers_exactly_but_slower(schema, oracle):
    """A delayed shard changes latency accounting, never the answer."""
    delay = 0.05
    plan = FaultPlan(
        specs=[
            FaultSpec(
                point="shard.query",
                kind="delay",
                page_prefix="shard/",
                count=10**9,
                delay_seconds=delay,
            )
        ]
    )
    engine = _build_engine(schema, fault_hook=shard_fault_hook(plan))
    try:
        truth = oracle.execute(QUERY)
        slow = engine.execute(QUERY)
        assert slow.rows == truth.rows
        assert slow.stats.partial is False
        # At least one shard's delay landed on the virtual clock.
        assert slow.stats.simulated_seconds >= delay
    finally:
        engine.shutdown()


def test_restart_rewarm_only_cools_the_restarted_shard(schema):
    """Consistent placement: one shard restart = one cold cache."""
    engine = _build_engine(schema, slots=16, read_latency=0.001)
    try:
        cache = engine.cache
        assert isinstance(cache, ShardedCacheManager)
        index = engine.sharded_index
        before_contents = [c.contents() for c in cache.shard_caches]
        reads_before = [
            shard.store.stats.reads for shard in index.shards
        ]
        victim = 1
        reloaded = cache.rewarm_shard(victim)
        assert reloaded == len(before_contents[victim])
        reads_after = [shard.store.stats.reads for shard in index.shards]
        for shard_id in range(SHARDS):
            if shard_id == victim:
                # The restarted shard re-read its preload set from its
                # own store.
                assert reads_after[shard_id] >= (
                    reads_before[shard_id] + reloaded
                )
            else:
                # Every other shard: cache untouched, store untouched.
                assert reads_after[shard_id] == reads_before[shard_id]
                assert cache.shard_caches[shard_id].contents() == (
                    before_contents[shard_id]
                )
        assert cache.shard_caches[victim].contents() == before_contents[victim]
    finally:
        engine.shutdown()


def test_rewarmed_engine_still_matches_oracle(schema, oracle):
    engine = _build_engine(schema)
    try:
        cache = engine.cache
        assert isinstance(cache, ShardedCacheManager)
        cache.rewarm_shard(2)
        assert engine.execute(QUERY).rows == oracle.execute(QUERY).rows
    finally:
        engine.shutdown()


def test_injection_point_is_registered():
    from repro.testing.faults import INJECTION_POINTS

    assert "shard.query" in INJECTION_POINTS
    # And the spec validator accepts it.
    FaultSpec(point="shard.query", kind="delay", delay_seconds=0.01)
