"""Retry policy, circuit breaker, and the armored replication feed.

Everything time-like is injected (fake clocks, recording sleeps) and
everything random is seeded, so the retry schedules asserted here are
exact, not statistical.
"""

from __future__ import annotations

import random
from datetime import datetime, timezone

import pytest

from repro.errors import CircuitOpenError, StorageError
from repro.osm.replication import (
    CircuitBreaker,
    ReplicationFeed,
    ResilientFeed,
    RetryPolicy,
)
from repro.obs import MetricsRegistry
from repro.osm.xml_io import OsmChange
from repro.testing import FaultPlan, FaultSpec, FaultyReplicationFeed, InjectedFault


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_growth_capped_at_max(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(attempt, rng) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        a = [policy.delay(i, random.Random(7)) for i in range(4)]
        b = [policy.delay(i, random.Random(7)) for i in range(4)]
        assert a == b  # replayable
        for attempt, delay in enumerate(a):
            raw = min(0.1 * 2.0**attempt, policy.max_delay)
            assert raw * 0.75 <= delay <= raw * 1.25


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_cooldown_grants_a_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # a concurrent caller is rejected

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_probe_failure_reopens_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe failure is enough
        assert breaker.state == "open"
        clock.advance(4.9)
        assert not breaker.allow()
        assert breaker.opens == 2

    def test_zero_threshold_rejected(self):
        with pytest.raises(StorageError):
            CircuitBreaker(failure_threshold=0)


def _published_feed(tmp_path, days: int = 2) -> ReplicationFeed:
    feed = ReplicationFeed(tmp_path, "day")
    for day in range(1, days + 1):
        feed.publish(OsmChange(), datetime(2021, 1, day, tzinfo=timezone.utc))
    return feed


def _resilient(feed, *, attempts=4, breaker=None, metrics=None, clock=None):
    slept: list[float] = []
    armored = ResilientFeed(
        feed,
        policy=RetryPolicy(attempts=attempts, base_delay=0.01, jitter=0.0),
        breaker=breaker,
        seed=1,
        sleep=slept.append,
        clock=clock or FakeClock(),
        metrics=metrics,
    )
    return armored, slept


class TestResilientFeed:
    def test_transient_failures_are_retried_through(self, tmp_path):
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.fetch", kind="error", count=2)]),
        )
        armored, slept = _resilient(flaky)
        change = armored.fetch(0)
        assert change is not None
        assert len(slept) == 2  # two failures, two backoffs, then success

    def test_exhausted_attempts_surface_the_typed_error(self, tmp_path):
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.state", kind="error", count=99)]),
        )
        armored, slept = _resilient(flaky, attempts=3)
        with pytest.raises(InjectedFault):
            armored.current_sequence()
        assert len(slept) == 2  # attempts - 1 backoffs

    def test_backoff_schedule_is_deterministic(self, tmp_path):
        def run() -> list[float]:
            flaky = FaultyReplicationFeed(
                _published_feed(tmp_path / str(len(schedules)), days=1),
                FaultPlan(
                    specs=[FaultSpec(point="feed.fetch", kind="error", count=3)]
                ),
            )
            armored = ResilientFeed(
                flaky,
                policy=RetryPolicy(attempts=5, base_delay=0.01, jitter=0.25),
                seed=42,
                sleep=slept.append,
                clock=FakeClock(),
            )
            armored.fetch(0)
            return list(slept)

        schedules: list[list[float]] = []
        for _ in range(2):
            slept: list[float] = []
            schedules.append(run())
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == 3

    def test_breaker_opens_and_fails_fast(self, tmp_path):
        clock = FakeClock()
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.fetch", kind="error", count=99)]),
        )
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0, clock=clock)
        armored, _ = _resilient(
            flaky, attempts=10, breaker=breaker, metrics=metrics, clock=clock
        )
        with pytest.raises(InjectedFault):
            armored.fetch(0)  # 3 failures open the breaker mid-retry-loop
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            armored.fetch(0)  # fast-fail: upstream never touched
        counters = metrics.snapshot()["counters"]
        assert counters["rased_feed_breaker_opens_total"][0]["value"] == 1
        assert counters["rased_feed_breaker_rejected_total"][0]["value"] == 1
        assert "rased_feed_failures_total" in counters

    def test_cooldown_probe_recovers_the_feed(self, tmp_path):
        clock = FakeClock()
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.fetch", kind="error", count=3)]),
        )
        breaker = CircuitBreaker(failure_threshold=3, cooldown=60.0, clock=clock)
        armored, _ = _resilient(flaky, attempts=10, breaker=breaker, clock=clock)
        with pytest.raises(InjectedFault):
            armored.fetch(0)
        clock.advance(60.0)
        # The probe succeeds (the fault spec is exhausted) and closes
        # the circuit for good.
        assert armored.fetch(0) is not None
        assert breaker.state == "closed"

    def test_deadline_stops_retrying_early(self, tmp_path):
        clock = FakeClock()
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.state", kind="error", count=99)]),
        )
        slept: list[float] = []
        armored = ResilientFeed(
            flaky,
            policy=RetryPolicy(
                attempts=50, base_delay=1.0, jitter=0.0, deadline=2.5
            ),
            seed=0,
            sleep=lambda s: (slept.append(s), clock.advance(s)),
            clock=clock,
        )
        with pytest.raises(InjectedFault):
            armored.current_sequence()
        # 1.0 + 2.0 backoffs fit under the 2.5s deadline check; the next
        # pause would overshoot, so the loop gives up well short of 50.
        assert len(slept) <= 2

    def test_iter_since_rides_through_transients(self, tmp_path):
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path, days=3),
            FaultPlan(
                specs=[
                    FaultSpec(point="feed.fetch", kind="error", after=1, count=2)
                ]
            ),
        )
        armored, slept = _resilient(flaky)
        sequences = [seq for seq, _, _ in armored.iter_since(None)]
        assert sequences == [0, 1, 2]
        assert len(slept) == 2

    def test_publish_is_not_retried(self, tmp_path):
        """Blind re-publish could double-allocate a sequence; the write
        side surfaces its error on the first failure."""
        flaky = FaultyReplicationFeed(
            _published_feed(tmp_path),
            FaultPlan(specs=[FaultSpec(point="feed.publish", kind="error")]),
        )
        armored, slept = _resilient(flaky)
        with pytest.raises(InjectedFault):
            armored.publish(OsmChange(), datetime(2021, 1, 3, tzinfo=timezone.utc))
        assert slept == []


class TestSystemWiring:
    def test_default_config_uses_the_raw_feed(self, atlas, tmp_path):
        from repro.system import RasedSystem, SystemConfig

        system = RasedSystem.create(root=tmp_path, atlas=atlas)
        assert system.crawl_feed is system.day_feed
        assert system.wal is None

    def test_armored_config_wraps_the_crawl_feed(self, atlas, tmp_path):
        from repro.system import RasedSystem, SystemConfig

        system = RasedSystem.create(
            root=tmp_path,
            atlas=atlas,
            config=SystemConfig(
                feed_retry_attempts=3, feed_breaker_threshold=4
            ),
        )
        assert isinstance(system.crawl_feed, ResilientFeed)
        assert system.crawl_feed.feed is system.day_feed
        breaker = system.crawl_feed.breaker
        assert breaker is not None and breaker.failure_threshold == 4
        assert system.pipeline.daily_crawler.feed is system.crawl_feed
