"""Unit tests for the dashboard's front-door admission control.

Everything here runs against a fake clock: token refill, quota
rollover, deadline expiry, and shed hysteresis are all pure functions
of injected time, so no test sleeps.
"""

from __future__ import annotations

import json

import pytest

from repro.core.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.dashboard.admission import (
    AdmissionConfig,
    AdmissionController,
    DailyQuota,
    QUOTA_WINDOW_SECONDS,
    Tenant,
    TenantRegistry,
    TokenBucket,
)
from repro.errors import ConfigError, DeadlineExceededError
from repro.obs import MetricsRegistry


class FakeClock:
    """A settable monotonic clock."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- token bucket ---------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, now=clock())
        assert [bucket.acquire(clock()) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.acquire(clock())
        assert wait == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, now=clock())
        bucket.acquire(clock())
        bucket.acquire(clock())
        assert bucket.acquire(clock()) > 0.0
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token back
        assert bucket.acquire(clock()) == 0.0
        assert bucket.acquire(clock()) > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, now=clock())
        clock.advance(100.0)
        assert bucket.available(clock()) == pytest.approx(2.0)

    def test_retry_after_reflects_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, now=clock())
        bucket.acquire(clock())
        # Empty bucket at 4 tokens/s: one whole token takes 0.25 s.
        assert bucket.acquire(clock()) == pytest.approx(0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0, burst=1.0, now=0.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1.0, burst=0.5, now=0.0)


# -- daily quota ----------------------------------------------------------


class TestDailyQuota:
    def test_exhaustion_within_window(self):
        clock = FakeClock()
        quota = DailyQuota(limit=2, now=clock())
        assert quota.consume(clock()) == 0.0
        assert quota.consume(clock()) == 0.0
        wait = quota.consume(clock())
        assert wait > 0.0
        # Retry-After points at the next window boundary.
        assert wait == pytest.approx(
            QUOTA_WINDOW_SECONDS - (clock() % QUOTA_WINDOW_SECONDS)
        )

    def test_rollover_resets_budget(self):
        clock = FakeClock()
        quota = DailyQuota(limit=1, now=clock())
        assert quota.consume(clock()) == 0.0
        assert quota.consume(clock()) > 0.0
        clock.advance(QUOTA_WINDOW_SECONDS)
        assert quota.consume(clock()) == 0.0
        assert quota.used(clock()) == 1

    def test_used_reports_zero_after_rollover(self):
        clock = FakeClock()
        quota = DailyQuota(limit=5, now=clock())
        quota.consume(clock())
        clock.advance(QUOTA_WINDOW_SECONDS)
        assert quota.used(clock()) == 0


# -- tenant registry ------------------------------------------------------


class TestTenantRegistry:
    def test_lookup(self):
        registry = TenantRegistry([Tenant(name="a", key="ka")])
        assert registry.lookup("ka").name == "a"
        assert registry.lookup("kb") is None
        assert registry.lookup(None) is None

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError):
            TenantRegistry(
                [Tenant(name="a", key="k"), Tenant(name="b", key="k")]
            )

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"name": "analytics", "key": "ak-1", "rate": 50,
                         "burst": 100, "daily_quota": 1000},
                        {"name": "ops", "key": "ak-2"},
                    ]
                }
            )
        )
        registry = TenantRegistry.load(path)
        assert len(registry) == 2
        analytics = registry.lookup("ak-1")
        assert analytics.rate == 50.0
        assert analytics.daily_quota == 1000
        assert registry.lookup("ak-2").rate is None

    def test_load_rejects_bad_shape(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({"tenants": [{"name": "x"}]}))
        with pytest.raises(ConfigError):
            TenantRegistry.load(path)
        path.write_text("not json")
        with pytest.raises(ConfigError):
            TenantRegistry.load(path)
        with pytest.raises(ConfigError):
            TenantRegistry.load(tmp_path / "missing.json")


# -- deadlines ------------------------------------------------------------


class TestDeadline:
    def test_expiry_on_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.6)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("phase1.fetch.disk")
        assert "phase1.fetch.disk" in str(excinfo.value)

    def test_scope_installs_and_clears(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert current_deadline() is None
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            check_deadline("anywhere")  # not yet expired: no raise
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError):
                check_deadline("anywhere")
        assert current_deadline() is None
        check_deadline("outside")  # no ambient deadline: no-op

    def test_nested_scope_restores_outer(self):
        clock = FakeClock()
        outer = Deadline(10.0, clock=clock)
        inner = Deadline(1.0, clock=clock)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ConfigError):
            Deadline(0.0)


# -- controller -----------------------------------------------------------


def make_controller(clock=None, tenants=None, metrics=None, **overrides):
    clock = clock or FakeClock()
    return (
        AdmissionController(
            AdmissionConfig(**overrides),
            tenants=tenants,
            metrics=metrics,
            clock=clock,
        ),
        clock,
    )


class TestControllerAuth:
    def test_unknown_key_rejected(self):
        registry = TenantRegistry([Tenant(name="a", key="ka")])
        controller, _ = make_controller(tenants=registry)
        decision = controller.admit("bogus")
        assert not decision.allowed
        assert decision.status == 401
        assert decision.reason == "unauthorized"

    def test_known_key_admitted(self):
        registry = TenantRegistry([Tenant(name="a", key="ka")])
        controller, _ = make_controller(tenants=registry)
        decision = controller.admit("ka")
        assert decision.allowed
        assert decision.tenant == "a"
        controller.release()

    def test_no_registry_means_no_auth(self):
        controller, _ = make_controller(rate_limit=100.0)
        assert controller.admit(None).allowed
        controller.release()


class TestControllerRateAndQuota:
    def test_rate_limit_throttles_with_retry_after(self):
        controller, clock = make_controller(rate_limit=1.0, burst=2.0)
        assert controller.admit(None).allowed
        assert controller.admit(None).allowed
        decision = controller.admit(None)
        assert not decision.allowed
        assert decision.status == 429
        assert decision.reason == "throttled"
        assert decision.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        assert controller.admit(None).allowed

    def test_per_tenant_buckets_are_independent(self):
        registry = TenantRegistry(
            [Tenant(name="a", key="ka"), Tenant(name="b", key="kb")]
        )
        controller, _ = make_controller(
            tenants=registry, rate_limit=1.0, burst=1.0
        )
        assert controller.admit("ka").allowed
        assert not controller.admit("ka").allowed
        # Tenant b still has its own full bucket.
        assert controller.admit("kb").allowed

    def test_tenant_rate_override_beats_default(self):
        registry = TenantRegistry(
            [Tenant(name="vip", key="kv", rate=100.0, burst=100.0)]
        )
        controller, _ = make_controller(
            tenants=registry, rate_limit=1.0, burst=1.0
        )
        for _ in range(50):
            assert controller.admit("kv").allowed

    def test_quota_rollover(self):
        controller, clock = make_controller(daily_quota=2)
        assert controller.admit(None).allowed
        controller.release()
        assert controller.admit(None).allowed
        controller.release()
        decision = controller.admit(None)
        assert not decision.allowed
        assert decision.status == 429
        assert decision.reason == "quota"
        assert decision.retry_after == pytest.approx(
            QUOTA_WINDOW_SECONDS - (clock() % QUOTA_WINDOW_SECONDS)
        )
        clock.advance(QUOTA_WINDOW_SECONDS)
        assert controller.admit(None).allowed

    def test_throttled_request_does_not_consume_quota(self):
        controller, clock = make_controller(
            rate_limit=1.0, burst=1.0, daily_quota=2
        )
        assert controller.admit(None).allowed
        assert controller.admit(None).reason == "throttled"
        clock.advance(1.0)
        assert controller.admit(None).allowed
        # Quota of 2 is now exhausted; the throttled attempt did not count.
        clock.advance(1.0)
        assert controller.admit(None).reason == "quota"


class TestControllerShedding:
    def test_shed_engages_at_threshold(self):
        controller, _ = make_controller(shed_threshold=2, shed_resume=1)
        assert controller.admit(None).allowed
        assert controller.admit(None).allowed
        decision = controller.admit(None)
        assert not decision.allowed
        assert decision.status == 503
        assert decision.reason == "shed"
        assert decision.retry_after is not None

    def test_hysteresis_requires_drop_to_resume_mark(self):
        controller, _ = make_controller(shed_threshold=4, shed_resume=2)
        for _ in range(4):
            assert controller.admit(None).allowed
        assert controller.admit(None).reason == "shed"
        controller.release()  # 3 in flight: above resume, still shedding
        assert controller.admit(None).reason == "shed"
        controller.release()  # 2 in flight: at resume, door reopens
        assert controller.admit(None).allowed

    def test_default_resume_is_three_quarters(self):
        assert AdmissionConfig(shed_threshold=8).effective_shed_resume() == 6
        assert AdmissionConfig(shed_threshold=1).effective_shed_resume() == 1
        assert (
            AdmissionConfig(shed_threshold=8, shed_resume=3)
            .effective_shed_resume()
            == 3
        )


class TestControllerDeadlines:
    def test_header_builds_deadline(self):
        controller, clock = make_controller(default_deadline_ms=0)
        decision = controller.admit(None, "250")
        assert decision.allowed
        assert decision.deadline is not None
        assert decision.deadline.remaining() == pytest.approx(0.25)
        clock.advance(0.3)
        assert decision.deadline.expired()

    def test_default_applied_without_header(self):
        controller, _ = make_controller(default_deadline_ms=100)
        decision = controller.admit(None, None)
        assert decision.deadline.remaining() == pytest.approx(0.1)

    def test_header_clamped_to_max(self):
        controller, _ = make_controller(
            default_deadline_ms=0, max_deadline_ms=1_000
        )
        decision = controller.admit(None, "999999")
        assert decision.deadline.remaining() == pytest.approx(1.0)

    def test_bad_header_is_rejected_not_ignored(self):
        controller, _ = make_controller()
        for header in ("abc", "0", "-5"):
            decision = controller.admit(None, header)
            assert not decision.allowed
            assert decision.status == 400
            assert decision.reason == "bad-deadline"

    def test_no_policy_means_no_deadline(self):
        controller, _ = make_controller()
        decision = controller.admit(None)
        assert decision.allowed
        assert decision.deadline is None


class TestControllerDrain:
    def test_drain_rejects_new_arrivals(self):
        controller, _ = make_controller(shed_threshold=10)
        assert controller.admit(None).allowed
        controller.begin_drain()
        decision = controller.admit(None)
        assert not decision.allowed
        assert decision.status == 503
        assert decision.reason == "draining"

    def test_wait_idle_times_out_then_succeeds(self):
        # Real clock here: wait_idle blocks on a condition variable.
        controller = AdmissionController(AdmissionConfig(shed_threshold=10))
        assert controller.admit(None).allowed
        assert controller.wait_idle(0.05) is False
        controller.release()
        assert controller.wait_idle(0.05) is True

    def test_inflight_accounting(self):
        controller, _ = make_controller(shed_threshold=10)
        assert controller.inflight == 0
        controller.admit(None)
        controller.admit(None)
        assert controller.inflight == 2
        controller.release()
        assert controller.inflight == 1


class TestControllerMetrics:
    def test_decisions_and_throttles_counted(self):
        metrics = MetricsRegistry()
        registry = TenantRegistry([Tenant(name="a", key="ka")])
        controller, _ = make_controller(
            tenants=registry, metrics=metrics, rate_limit=1.0, burst=1.0
        )
        controller.admit("ka")
        controller.admit("ka")  # throttled
        controller.admit("nope")  # unauthorized
        assert metrics.value(
            "rased_admission_requests_total", decision="admitted"
        ) == 1
        assert metrics.value(
            "rased_admission_requests_total", decision="throttled"
        ) == 1
        assert metrics.value(
            "rased_admission_requests_total", decision="unauthorized"
        ) == 1
        assert metrics.value(
            "rased_admission_throttled_total", tenant="a"
        ) == 1

    def test_deadline_hits_counted_per_path(self):
        metrics = MetricsRegistry()
        controller, _ = make_controller(metrics=metrics)
        controller.record_deadline_hit("/analysis")
        controller.record_deadline_hit("/analysis")
        assert metrics.value(
            "rased_admission_deadline_hits_total", path="/analysis"
        ) == 2


class TestConfig:
    def test_default_config_disables_everything(self):
        assert not AdmissionConfig().any_enabled()

    def test_each_knob_enables(self):
        assert AdmissionConfig(key_file="x").any_enabled()
        assert AdmissionConfig(rate_limit=1.0).any_enabled()
        assert AdmissionConfig(daily_quota=1).any_enabled()
        assert AdmissionConfig(default_deadline_ms=1).any_enabled()
        assert AdmissionConfig(shed_threshold=1).any_enabled()
