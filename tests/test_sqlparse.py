"""Tests for the paper-dialect SQL parser, including to_sql roundtrips."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.sqlgen import to_sql
from repro.baseline.sqlparse import parse_sql
from repro.core.query import AnalysisQuery
from repro.errors import QueryError


class TestPaperExamples:
    def test_example_1(self):
        query = parse_sql(
            """
            SELECT U.Country, U.ElementType, COUNT(*)
            FROM UpdateList U
            WHERE U.Date BETWEEN 2021-01-01 AND 2021-12-31
              AND U.UpdateType IN [New, Update]
            GROUP BY U.Country, U.ElementType
            """
        )
        assert query.start == date(2021, 1, 1)
        assert query.end == date(2021, 12, 31)
        assert query.update_types == ("create", "geometry")
        assert query.group_by == ("country", "element_type")
        assert query.metric == "count"

    def test_example_2_with_after(self):
        query = parse_sql(
            """
            SELECT U.RoadType, U.ElementType, COUNT(*)
            FROM UpdateList U
            WHERE U.Date AFTER 2018-01-01
              AND U.Country = USA
              AND U.UpdateType IN [New, Update]
            GROUP BY U.RoadType, U.ElementType
            """,
            default_end=date(2021, 12, 31),
        )
        assert query.start == date(2018, 1, 1)
        assert query.end == date(2021, 12, 31)
        assert query.countries == ("usa",)
        assert query.group_by == ("road_type", "element_type")

    def test_example_3_percentage(self):
        query = parse_sql(
            """
            SELECT U.Country, U.Date, Percentage(*)
            FROM UpdateList U
            WHERE U.Date BETWEEN 2020-01-01 AND 2021-12-31
              AND U.Country IN [Germany, Singapore, Qatar]
            GROUP BY U.Country, U.Date
            """
        )
        assert query.metric == "percentage"
        assert query.countries == ("germany", "singapore", "qatar")
        assert query.group_by == ("country", "date")


class TestParserDetails:
    def test_plain_count_without_group(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31"
        )
        assert query.group_by == ()

    def test_titlecase_values_become_snake_case(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
            "AND U.Country IN [UnitedStates, SouthKorea]"
        )
        assert query.countries == ("united_states", "south_korea")

    def test_snake_case_values_pass_through(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
            "AND U.Country = united_states"
        )
        assert query.countries == ("united_states",)

    def test_element_type_values(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
            "AND U.ElementType IN [Node, Way]"
        )
        assert query.element_types == ("node", "way")

    def test_update_type_synonyms(self):
        query = parse_sql(
            "SELECT COUNT(*) FROM UpdateList U "
            "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
            "AND U.UpdateType IN [Delete, MetadataUpdate]"
        )
        assert query.update_types == ("delete", "metadata")

    def test_missing_from_rejected(self):
        with pytest.raises(QueryError):
            parse_sql("SELECT COUNT(*) FROM Elsewhere WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-02")

    def test_missing_date_predicate_rejected(self):
        with pytest.raises(QueryError, match="Date"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U WHERE U.Country = Germany"
            )

    def test_after_without_default_end_rejected(self):
        with pytest.raises(QueryError, match="default_end"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U WHERE U.Date AFTER 2020-01-01"
            )

    def test_select_group_mismatch_rejected(self):
        with pytest.raises(QueryError, match="must match"):
            parse_sql(
                "SELECT U.Country, COUNT(*) FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "GROUP BY U.ElementType"
            )

    def test_missing_metric_rejected(self):
        with pytest.raises(QueryError, match="COUNT"):
            parse_sql(
                "SELECT U.Country FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "GROUP BY U.Country"
            )

    def test_unknown_attribute_rejected(self):
        with pytest.raises(QueryError, match="attribute"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "AND U.Color = Red"
            )

    def test_unknown_element_type_rejected(self):
        with pytest.raises(QueryError, match="ElementType"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "AND U.ElementType = Building"
            )

    def test_empty_in_list_rejected(self):
        with pytest.raises(QueryError, match="empty"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "AND U.Country IN []"
            )

    def test_unsupported_condition_rejected(self):
        with pytest.raises(QueryError, match="unsupported"):
            parse_sql(
                "SELECT COUNT(*) FROM UpdateList U "
                "WHERE U.Date BETWEEN 2021-01-01 AND 2021-01-31 "
                "AND U.Country LIKE 'ger%'"
            )


SIMPLE_NAMES = st.sampled_from(
    ["germany", "qatar", "france", "brazil", "india", "vietnam"]
)
ROAD_NAMES = st.sampled_from(["residential", "service", "primary", "track"])
UPDATE_NAMES = st.sampled_from(["create", "geometry", "delete", "metadata"])
ELEMENT_NAMES = st.sampled_from(["node", "way", "relation"])
ATTRS = st.lists(
    st.sampled_from(["element_type", "date", "country", "road_type", "update_type"]),
    unique=True,
    max_size=3,
).map(tuple)


class TestRoundtrip:
    @given(
        st.dates(min_value=date(2010, 1, 1), max_value=date(2020, 1, 1)),
        st.integers(min_value=0, max_value=700),
        st.none() | st.lists(SIMPLE_NAMES, min_size=1, max_size=3, unique=True).map(tuple),
        st.none() | st.lists(ROAD_NAMES, min_size=1, max_size=2, unique=True).map(tuple),
        st.none() | st.lists(UPDATE_NAMES, min_size=1, max_size=4, unique=True).map(tuple),
        st.none() | st.lists(ELEMENT_NAMES, min_size=1, max_size=3, unique=True).map(tuple),
        ATTRS,
        st.sampled_from(["count", "percentage"]),
    )
    @settings(max_examples=60)
    def test_parse_inverts_to_sql(
        self, start, span, countries, roads, updates, elements, group_by, metric
    ):
        """parse_sql(to_sql(q)) == q for snake-case-safe value names."""
        from datetime import timedelta

        query = AnalysisQuery(
            start=start,
            end=start + timedelta(days=span),
            countries=countries,
            road_types=roads,
            update_types=updates,
            element_types=elements,
            group_by=group_by,
            metric=metric,
        )
        assert parse_sql(to_sql(query)) == query
