#!/usr/bin/env python3
"""Paper Example 2 (Fig. 4): road-type analysis for one country.

"Find the number of newly created or modified elements types (node,
way, relation) for each road type in USA" — grouped on RoadType and
ElementType, filtered on Date, Country, and UpdateType.

Run:  python examples/road_type_analysis.py
"""

from _common import SPAN_END, SPAN_START, example_system

from repro import AnalysisQuery


def main() -> None:
    system = example_system()
    query = AnalysisQuery(
        start=SPAN_START,
        end=SPAN_END,
        countries=("united_states",),
        update_types=("create", "geometry"),
        group_by=("road_type", "element_type"),
    )

    print("SQL:")
    print(system.dashboard.sql_of(query))
    print()

    result = system.dashboard.analysis(query)
    print(
        f"[{result.stats.cube_count} cubes, "
        f"{result.stats.simulated_ms:.2f} ms modeled]"
    )
    print()

    print("Fig. 4 — updates per road type in the United States:")
    from repro.dashboard.charts import bar_chart

    print(bar_chart(result, limit=14))
    print()

    # Bonus: the same analysis per US state — the paper's "zones of
    # interest" in action (states are first-class zone values).
    state_query = AnalysisQuery(
        start=SPAN_START,
        end=SPAN_END,
        countries=("minnesota", "california", "texas", "new_york"),
        update_types=("create", "geometry"),
        group_by=("country",),
    )
    state_result = system.dashboard.analysis(state_query)
    print("Per-state drill-down (zones of interest):")
    from repro.dashboard.tables import render_table

    print(render_table(state_result))


if __name__ == "__main__":
    main()
