#!/usr/bin/env python3
"""Serve the dashboard over HTTP and query it like the live RASED.

The real system is a public web service (https://rased.cs.umn.edu);
this example starts the reproduction's JSON API on localhost, issues
the paper's Example 1 query over HTTP, and prints the response —
demonstrating that a browser front-end could drive this backend
directly.

Run:  python examples/http_dashboard.py
"""

import json
import urllib.request

from _common import SPAN_END, SPAN_START, example_system

from repro.dashboard.server import DashboardServer


def get(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    system = example_system()
    with DashboardServer(system.dashboard) as server:
        print(f"Dashboard API listening on {server.url}")

        health = get(server.url + "/health")
        print(f"GET /health -> {health}")

        payload = {
            "start": SPAN_START.isoformat(),
            "end": SPAN_END.isoformat(),
            "update_types": ["create", "geometry"],
            "group_by": ["country", "element_type"],
        }
        print()
        print(f"POST /analysis {json.dumps(payload)}")
        answer = post(server.url + "/analysis", payload)
        print("SQL executed:")
        print(answer["sql"])
        print()
        print(f"stats: {answer['stats']}")
        print("top rows:")
        for row in answer["rows"][:8]:
            print(f"  {row['group']}: {row['value']:,}")

        print()
        samples = get(server.url + "/samples?zone=qatar&n=3")
        print(f"GET /samples?zone=qatar&n=3 -> {len(samples['samples'])} updates")
        for fields in samples["samples"]:
            print(f"  {fields}")


if __name__ == "__main__":
    main()
