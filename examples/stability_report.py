#!/usr/bin/env python3
"""Map-stability analysis: the dashboard's reason to exist.

The paper motivates RASED with map analyzers who need to "understand
and assess the map quality" and judge "road network stability anywhere
in the world". This example plants two real-world events into the
synthetic edit stream — an organized import in Qatar and a vandalism
burst in France — runs the ordinary pipeline, and shows the stability
analyzer surfacing both from nothing but cube queries.

Run:  python examples/stability_report.py
"""

from datetime import date

from repro import RasedSystem, SystemConfig
from repro.core.stability import StabilityAnalyzer
from repro.storage.disk import InMemoryDisk
from repro.synth.scenarios import (
    ScenarioSimulator,
    import_event,
    vandalism_event,
)
from repro.synth.simulator import SimulationConfig

SPAN = (date(2021, 3, 1), date(2021, 3, 31))
IMPORT_DAY = date(2021, 3, 17)
VANDAL_DAY = date(2021, 3, 24)


def main() -> None:
    print("Simulating March 2021 with two planted events:")
    print(f"  - organized import in qatar on {IMPORT_DAY}")
    print(f"  - vandalism burst in france on {VANDAL_DAY}")
    system = RasedSystem.create(
        store=InMemoryDisk(read_latency=0.005, write_latency=0.006),
        config=SystemConfig(
            road_types=12,
            cache_slots=32,
            simulation=SimulationConfig(
                seed=55, mapper_count=30, base_sessions_per_day=10, nodes_per_country=8
            ),
        ),
    )
    system.simulator = ScenarioSimulator(
        atlas=system.atlas,
        config=system.config.simulation,
        events=[
            import_event(IMPORT_DAY, "qatar", sessions=8),
            vandalism_event(VANDAL_DAY, "france", sessions=6),
        ],
    )
    system.simulate_and_ingest(*SPAN, monthly_rebuild=True)
    system.warm_cache()
    for country, size in system.simulator.road_network_sizes().items():
        system.network_sizes.update_country(country, size)

    analyzer = StabilityAnalyzer(system.executor, system.network_sizes)
    zones = ["qatar", "france", "germany", "united_states", "vietnam", "india"]
    print()
    print(analyzer.render_report(zones, *SPAN))

    print()
    qatar = analyzer.zone_metrics("qatar", *SPAN)
    print(
        f"qatar detail: {qatar.total_updates:,} updates over a "
        f"{qatar.network_size:,}-segment network; "
        f"stability score {qatar.stability_score:.3f}; "
        f"weekly trend {qatar.trend_slope:+.1f}"
    )
    anomalies = analyzer.detect_anomalies("qatar", *SPAN)
    strongest = max(anomalies, key=lambda a: a.z_score)
    print(
        f"strongest anomaly: {strongest.day} with {strongest.count:,} updates "
        f"(z={strongest.z_score:.1f}) — the planted import"
    )


if __name__ == "__main__":
    main()
