"""Shared deployment builder for the example scripts.

Each example needs a populated dashboard; this module builds one
deployment (four simulated months, daily-crawled, with the monthly
rebuild applied) and caches it per process so running an example costs
one simulation, not several.
"""

from __future__ import annotations

from datetime import date

from repro import RasedSystem, SystemConfig
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig

SPAN_START = date(2021, 1, 1)
SPAN_END = date(2021, 4, 30)

_SYSTEM: RasedSystem | None = None


def example_system() -> RasedSystem:
    """A populated deployment covering SPAN_START .. SPAN_END."""
    global _SYSTEM
    if _SYSTEM is not None:
        return _SYSTEM
    print("Simulating four months of OSM edits (one-time setup)...")
    system = RasedSystem.create(
        store=InMemoryDisk(read_latency=0.005, write_latency=0.006),
        config=SystemConfig(
            road_types=12,
            cache_slots=48,
            simulation=SimulationConfig(
                seed=2021,
                mapper_count=60,
                base_sessions_per_day=14,
                nodes_per_country=10,
            ),
        ),
    )
    report = system.simulate_and_ingest(SPAN_START, SPAN_END, monthly_rebuild=True)
    system.warm_cache()
    print(
        f"  ingested {report.updates_indexed:,} updates over "
        f"{report.days_processed} days\n"
    )
    _SYSTEM = system
    return system
