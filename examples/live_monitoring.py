#!/usr/bin/env python3
"""Live monitoring: intra-day statistics from hourly diffs (extension).

The deployed RASED refreshes daily; OSM also publishes hourly diffs.
This example runs a deployment where yesterday is fully ingested but
*today* exists only as hourly diffs — and shows the dashboard serving
up-to-the-hour numbers by overlaying the live monitor's in-memory cube
on the persisted index. It also shows the contributor analytics built
from changeset metadata.

Run:  python examples/live_monitoring.py
"""

from datetime import date

from repro import AnalysisQuery, RasedSystem, SystemConfig
from repro.storage.disk import InMemoryDisk
from repro.synth.simulator import SimulationConfig


def main() -> None:
    system = RasedSystem.create(
        store=InMemoryDisk(read_latency=0.005, write_latency=0.006),
        config=SystemConfig(
            road_types=12,
            cache_slots=16,
            simulation=SimulationConfig(
                seed=99, mapper_count=30, base_sessions_per_day=10, nodes_per_country=8
            ),
        ),
    )

    print("Publishing and ingesting a complete week (daily + hourly feeds)...")
    day = date(2021, 8, 1)
    from datetime import timedelta

    for offset in range(7):
        system.publish_day(day + timedelta(days=offset), hourly=True)
    report = system.pipeline.run_daily()
    print(f"  ingested {report.updates_indexed:,} updates over {report.days_processed} days")

    print("Publishing 'today' (Aug 8) as hourly diffs only, through 14:59...")
    published = system.publish_partial_day(date(2021, 8, 8), through_hour=14)
    print(f"  {published} updates visible only to the live monitor")
    hours = system.poll_live()
    print(f"  live monitor consumed {hours} hourly diffs; "
          f"live days: {system.live_monitor.partial_days()}")

    query = AnalysisQuery(
        start=date(2021, 8, 1),
        end=date(2021, 8, 8),
        group_by=("element_type",),
    )
    stale = system.dashboard.analysis(query)
    live = system.dashboard.analysis_live(query)
    print()
    print(f"Window {query.start}..{query.end}, grouped by element type:")
    print(f"  persisted index only: {int(stale.total):>7,} updates")
    print(f"  with live overlay:    {int(live.total):>7,} updates "
          f"(+{int(live.total - stale.total):,} from today's hourly diffs)")
    print()
    for key, value in live.sorted_rows():
        print(f"  {key[0]:<10} {int(value):>7,}")

    print()
    print("Top contributors (from changeset metadata):")
    for contributor in system.dashboard.top_contributors(5):
        print(
            f"  {contributor.user:<22} {contributor.session_count:>4} sessions  "
            f"{contributor.change_count:>7,} changes  "
            f"{contributor.bulk_session_count:>3} bulk"
        )


if __name__ == "__main__":
    main()
