#!/usr/bin/env python3
"""Paper Example 1 (Figs. 2-3): country analysis.

"Find the number of newly created or modified element types (node,
way, relation) for each country road network" — grouped on Country and
ElementType, filtered on Date and UpdateType, rendered as a bar chart
(Fig. 2) and a sorted pivot table (Fig. 3).

Run:  python examples/country_analysis.py
"""

from _common import SPAN_END, SPAN_START, example_system

from repro import AnalysisQuery


def main() -> None:
    system = example_system()
    query = AnalysisQuery(
        start=SPAN_START,
        end=SPAN_END,
        update_types=("create", "geometry"),
        group_by=("country", "element_type"),
    )

    print("SQL:")
    print(system.dashboard.sql_of(query))
    print()

    result = system.dashboard.analysis(query)
    print(
        f"[{result.stats.cube_count} cubes, {result.stats.cache_hits} cached, "
        f"{result.stats.simulated_ms:.2f} ms modeled]"
    )
    print()

    print("Fig. 2 — bar chart format:")
    from repro.dashboard.charts import bar_chart

    print(bar_chart(result, limit=12))
    print()

    print("Fig. 3 — table format (countries down, element types across):")
    from repro.dashboard.tables import render_pivot

    print(render_pivot(result, "country", "element_type", limit=10))
    print()

    print("Choropleth of update intensity (dashboard map view):")
    print(system.dashboard.choropleth(query))


if __name__ == "__main__":
    main()
