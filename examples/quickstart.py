#!/usr/bin/env python3
"""Quickstart: stand up a RASED deployment and ask it questions.

This drives the complete pipeline from the paper's Fig. 1:

1. a synthetic OSM world is created (306 zones, per-country road
   networks) and two months of edits are simulated, published as real
   osmChange diffs + changeset files;
2. the daily crawler ingests them into the hierarchical cube index and
   the sample-update warehouse;
3. the dashboard answers analysis queries in milliseconds.

Run:  python examples/quickstart.py
"""

from datetime import date

from repro import AnalysisQuery, RasedSystem, SystemConfig
from repro.synth.simulator import SimulationConfig


def main() -> None:
    print("Building a RASED deployment (synthetic world, in-memory pages)...")
    system = RasedSystem.create(
        config=SystemConfig(
            road_types=12,
            cache_slots=32,
            simulation=SimulationConfig(
                seed=42, mapper_count=40, base_sessions_per_day=10, nodes_per_country=8
            ),
        )
    )

    start, end = date(2021, 1, 1), date(2021, 2, 28)
    print(f"Simulating and ingesting {start} .. {end} ...")
    report = system.simulate_and_ingest(start, end)
    print(
        f"  {report.days_processed} days, {report.updates_indexed:,} updates, "
        f"{len(report.cubes_written)} cubes written, "
        f"{report.warehouse_rows:,} warehouse rows"
    )
    system.warm_cache()

    # --- analysis query: who edited the most? ---------------------------
    query = AnalysisQuery(
        start=start,
        end=end,
        group_by=("country", "element_type"),
        update_types=("create", "geometry"),
    )
    print()
    print("Query (the paper's SQL form):")
    print(system.dashboard.sql_of(query))
    result = system.dashboard.analysis(query)
    print()
    print(f"Answered from {result.stats.cube_count} cubes "
          f"({result.stats.cache_hits} cached, {result.stats.disk_reads} disk) "
          f"in {result.stats.simulated_ms:.2f} ms (modeled)")
    print()
    print("Top rows:")
    for key, value in result.sorted_rows()[:8]:
        print(f"  {key[0]:<16} {key[1]:<9} {value:>8,}")

    # --- sample-update query --------------------------------------------
    print()
    samples = system.dashboard.sample_updates("germany", n=5)
    print(f"Sample updates in germany ({len(samples)} shown):")
    for record in samples:
        print(
            f"  {record.date} {record.element_type:<8} {record.road_type:<12} "
            f"{record.update_type:<9} @({record.latitude:.3f},{record.longitude:.3f}) "
            f"changeset={record.changeset_id}"
        )

    # --- drill into one changeset (the third-party hook) -----------------
    if samples:
        changeset_id = samples[0].changeset_id
        rows = system.dashboard.changeset_updates(changeset_id)
        print()
        print(f"Changeset {changeset_id} touched {len(rows)} elements.")


if __name__ == "__main__":
    main()
