#!/usr/bin/env python3
"""Paper Example 3 (Fig. 5): comparative percentage time series.

"Compare the percentage of daily changes in road network in Germany,
Singapore, and Qatar" — grouped on Country and Date with the
Percentage(*) metric (counts divided by each country's road-network
size), rendered as a multi-series chart, plus the timelapse view
(choropleth frames over time).

Run:  python examples/time_series_comparison.py
"""

from _common import SPAN_END, SPAN_START, example_system

from repro import AnalysisQuery, Level


def main() -> None:
    system = example_system()
    query = AnalysisQuery(
        start=SPAN_START,
        end=SPAN_END,
        countries=("germany", "singapore", "qatar"),
        group_by=("country", "date"),
        metric="percentage",
        date_granularity=Level.WEEK,
    )

    print("SQL:")
    print(system.dashboard.sql_of(query))
    print()

    result = system.dashboard.analysis(query)
    print(
        f"[{result.stats.cube_count} cubes across "
        f"{len({k[1] for k in result.rows})} periods, "
        f"{result.stats.simulated_ms:.2f} ms modeled]"
    )
    print()

    print("Fig. 5 — % of road network changed per week:")
    from repro.dashboard.charts import time_series

    print(time_series(result))
    print()

    # The timelapse view: monthly frames of worldwide update intensity.
    print("Timelapse (monthly frames of worldwide updates):")
    frames = system.dashboard.timelapse(
        AnalysisQuery(
            start=SPAN_START,
            end=SPAN_END,
            group_by=("country",),
        ),
        frame_granularity=Level.MONTH,
    )
    for frame in frames:
        print()
        print(f"--- {frame.title} ---")
        print(frame.art)


if __name__ == "__main__":
    main()
